"""Packet requests and runtime packet records.

A packet request is the 4-tuple ``r_i = (a_i, b_i, t_i, d_i)`` of the paper
(Section 2.1): source node, destination node, arrival (injection) time and
deadline.  ``deadline=None`` encodes ``d_i = infinity`` (no deadline).

Nodes are coordinate tuples; a uni-directional line uses 1-tuples.  The
convenience constructor :meth:`Request.line` accepts plain integers.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.util.errors import ValidationError

Node = tuple  # coordinate tuple, e.g. (x,) on a line or (x, y) on a grid

_rid_counter = itertools.count()


def _as_node(value) -> Node:
    """Normalise ``value`` (int or tuple of ints) to a coordinate tuple."""
    if isinstance(value, tuple):
        if not value or not all(isinstance(x, (int,)) or hasattr(x, "__index__") for x in value):
            raise ValidationError(f"node must be a non-empty tuple of ints, got {value!r}")
        return tuple(int(x) for x in value)
    try:
        return (int(value),)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"cannot interpret {value!r} as a node") from exc


@dataclass(frozen=True, order=True)
class Request:
    """An online packet request ``(a_i, b_i, t_i, d_i)``.

    Parameters
    ----------
    source, dest:
        Coordinate tuples of equal dimension.  Whether ``dest`` is
        reachable from ``source`` depends on the network (non-wrapping
        axes require ``source <= dest``); ``Network.check_request``
        enforces it.
    arrival:
        Time step ``t_i`` at which the request is revealed and may first be
        injected at ``source``.
    deadline:
        Latest delivery time ``d_i`` (inclusive), or ``None`` for no
        deadline.  The algorithm is only credited for delivering the packet
        at a time ``t' <= d_i``.
    rid:
        Unique integer id; assigned automatically when omitted.
    """

    # Sort key: requests are processed online in arrival order, ties broken
    # by id, which gives a deterministic adversarial sequence.
    arrival: int
    rid: int = field(compare=True)
    source: Node = field(compare=False)
    dest: Node = field(compare=False)
    deadline: int | None = field(default=None, compare=False)

    def __init__(self, source, dest, arrival: int, deadline: int | None = None, rid: int | None = None):
        object.__setattr__(self, "source", _as_node(source))
        object.__setattr__(self, "dest", _as_node(dest))
        object.__setattr__(self, "arrival", int(arrival))
        object.__setattr__(self, "deadline", None if deadline is None else int(deadline))
        object.__setattr__(self, "rid", next(_rid_counter) if rid is None else int(rid))
        self._validate()

    def _validate(self) -> None:
        if len(self.source) != len(self.dest):
            raise ValidationError(
                f"source {self.source} and dest {self.dest} have different dimensions"
            )
        if self.arrival < 0:
            raise ValidationError(f"arrival must be >= 0, got {self.arrival}")
        # Reachability and deadline feasibility depend on the network's
        # geometry (wrapping axes reach "backward" targets), so those
        # checks live in Network.check_request, not here.

    @classmethod
    def line(cls, source: int, dest: int, arrival: int, deadline: int | None = None, rid: int | None = None) -> "Request":
        """Build a request on a uni-directional line from integer endpoints."""
        return cls((int(source),), (int(dest),), arrival, deadline, rid)

    @property
    def distance(self) -> int:
        """Closed-form hop distance ``dist(a_i, b_i)`` on a non-wrapping
        grid.  On rings/tori use ``network.dist(r.source, r.dest)``."""
        return sum(d - s for s, d in zip(self.source, self.dest))

    @property
    def dim(self) -> int:
        """Dimension of the grid the request lives on."""
        return len(self.source)

    def is_trivial(self) -> bool:
        """True when source == dest: delivered at injection with no routing."""
        return self.source == self.dest

    def __repr__(self) -> str:  # compact, used heavily in test failure output
        dl = "inf" if self.deadline is None else str(self.deadline)
        return f"Request#{self.rid}({self.source}->{self.dest} @t={self.arrival} d={dl})"


class DeliveryStatus(enum.Enum):
    """Lifecycle outcome of a request (Section 2.1 terminology)."""

    PENDING = "pending"  # not yet processed
    REJECTED = "rejected"  # locally input and deleted before injection
    INJECTED = "injected"  # admitted into the network, still in flight
    PREEMPTED = "preempted"  # injected then deleted before reaching dest
    DELIVERED = "delivered"  # reached destination on time
    LATE = "late"  # reached destination after the deadline (no credit)


@dataclass
class Packet:
    """Runtime record of an injected packet inside the simulator."""

    request: Request
    location: Node  # current node
    injected_at: int
    status: DeliveryStatus = DeliveryStatus.INJECTED
    delivered_at: int | None = None
    hops: int = 0

    @property
    def rid(self) -> int:
        return self.request.rid

    @property
    def dest(self) -> Node:
        return self.request.dest

    def remaining_distance(self, network=None) -> int:
        """Hops left to the destination (nearest-to-go priority key).

        Pass the network on wrapping topologies; without it the
        closed-form grid metric is used.
        """
        if network is not None:
            return network.dist(self.location, self.request.dest)
        return sum(d - x for x, d in zip(self.location, self.request.dest))
