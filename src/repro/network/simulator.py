"""The synchronous store-and-forward simulator (Model 1 node semantics).

Section 2.1: in each time step every node considers (i) packets arriving on
incoming links (sent by neighbours one step earlier), (ii) packets stored in
its buffer, and (iii) locally injected packets.  Packets destined to the
node are removed (delivered; credited when on time).  The node then forwards
at most ``c`` packets per outgoing link, stores at most ``B``, and deletes
the rest.  This is node Model 1 of Appendix F ([ARSU02, RR09]), the model
the paper adopts.

Two front ends:

* **policy-driven** -- an online :class:`Policy` object makes the per-node,
  per-step decision (used by the greedy and nearest-to-go baselines);
* **plan-driven** (:func:`execute_plan`) -- packets follow precomputed
  space-time paths (used by the paper's centralized algorithms); the engine
  then doubles as a feasibility checker: any capacity violation raises
  :class:`~repro.util.errors.CapacityError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.packet import DeliveryStatus, Packet, Request
from repro.network.stats import NetworkStats
from repro.network.topology import Network
from repro.network.trace import TraceRecorder
from repro.spacetime.coords import tilt
from repro.util.errors import CapacityError, ValidationError


@dataclass
class Decision:
    """A node's choice for one time step.

    ``forward[axis]`` lists packets sent on the outgoing link along
    ``axis``; ``store`` lists packets kept in the buffer.  Every candidate
    packet not mentioned is deleted (rejected when it was injected this
    step, preempted otherwise).
    """

    forward: dict = field(default_factory=dict)  # axis -> [Packet]
    store: list = field(default_factory=list)


class Policy:
    """Interface for online per-step routing policies."""

    def decide(self, node: tuple, t: int, candidates: list, network: Network) -> Decision:
        raise NotImplementedError

    def on_step_begin(self, t: int) -> None:
        """Hook called once per time step (e.g. for global coordination)."""


@dataclass
class SimulationResult:
    """Outcome of a run: per-request statuses plus aggregate stats.

    ``engine`` names the implementation that actually produced the result
    (``"reference"`` or ``"fast"``) -- the ground truth for reporting,
    since :func:`~repro.network.engine.make_engine` may fall back.
    """

    stats: NetworkStats
    status: dict  # rid -> DeliveryStatus
    trace: TraceRecorder
    engine: str = "reference"

    @property
    def throughput(self) -> int:
        return self.stats.throughput

    def delivered_ids(self) -> set:
        return {
            rid for rid, st in self.status.items() if st == DeliveryStatus.DELIVERED
        }


class Simulator:
    """Synchronous engine over a :class:`~repro.network.topology.Network`."""

    def __init__(self, network: Network, policy: Policy, trace: bool = False):
        self.network = network
        self.policy = policy
        self.trace = TraceRecorder(enabled=trace)

    def run(self, requests, horizon: int) -> SimulationResult:
        """Simulate ``requests`` for time steps ``0..horizon`` inclusive."""
        network, policy, trace = self.network, self.policy, self.trace
        B, c = network.buffer_size, network.capacity
        stats = NetworkStats()
        status: dict = {}

        arrivals_by_time: dict = {}
        for r in requests:
            network.check_request(r)
            status[r.rid] = DeliveryStatus.PENDING
            arrivals_by_time.setdefault(r.arrival, []).append(r)

        buffers: dict = {}  # node -> [Packet]
        in_flight: list = []  # packets arriving next step: (node, Packet)

        last_arrival = max(arrivals_by_time, default=-1)
        for t in range(0, horizon + 1):
            if not in_flight and not buffers and t > last_arrival:
                break
            stats.steps += 1
            policy.on_step_begin(t)

            # gather per-node candidates
            at_node: dict = {}
            for node, pkt in in_flight:
                pkt.location = node
                pkt.hops += 1
                at_node.setdefault(node, []).append(pkt)
            in_flight = []
            for node, pkts in buffers.items():
                at_node.setdefault(node, []).extend(pkts)
            buffers = {}
            injected_now: set = set()
            for r in arrivals_by_time.get(t, ()):  # local inputs
                pkt = Packet(request=r, location=r.source, injected_at=t)
                injected_now.add(r.rid)
                at_node.setdefault(r.source, []).append(pkt)

            new_buffers: dict = {}
            for node, candidates in at_node.items():
                # deliveries first (Section 2.1: packets destined to v are
                # removed from the network)
                remaining = []
                for pkt in candidates:
                    if pkt.dest == node:
                        on_time = (
                            pkt.request.deadline is None
                            or t <= pkt.request.deadline
                        )
                        pkt.status = (
                            DeliveryStatus.DELIVERED if on_time else DeliveryStatus.LATE
                        )
                        pkt.delivered_at = t
                        status[pkt.rid] = pkt.status
                        stats.delivery_times[pkt.rid] = t
                        if on_time:
                            stats.delivered += 1
                            trace.record(t, "deliver", pkt.rid, node)
                        else:
                            stats.late += 1
                            trace.record(t, "late", pkt.rid, node)
                    else:
                        remaining.append(pkt)
                if not remaining:
                    continue

                decision = policy.decide(node, t, remaining, network)
                self._validate_decision(node, remaining, decision, B, c)

                handled = set()
                for axis, pkts in decision.forward.items():
                    stats.max_link_load = max(stats.max_link_load, len(pkts))
                    head = list(node)
                    head[axis] = (head[axis] + 1) % network.dims[axis] \
                        if network.wrap[axis] else head[axis] + 1
                    head = tuple(head)
                    for pkt in pkts:
                        handled.add(id(pkt))
                        if status[pkt.rid] == DeliveryStatus.PENDING:
                            status[pkt.rid] = DeliveryStatus.INJECTED
                            trace.record(t, "inject", pkt.rid, node)
                        in_flight.append((head, pkt))
                        stats.forwards += 1
                        trace.record(t, "forward", pkt.rid, node, f"axis={axis}")
                stats.max_buffer_load = max(stats.max_buffer_load, len(decision.store))
                for pkt in decision.store:
                    handled.add(id(pkt))
                    if status[pkt.rid] == DeliveryStatus.PENDING:
                        status[pkt.rid] = DeliveryStatus.INJECTED
                        trace.record(t, "inject", pkt.rid, node)
                    new_buffers.setdefault(node, []).append(pkt)
                    stats.stores += 1
                    trace.record(t, "store", pkt.rid, node)

                for pkt in remaining:  # everything unhandled is deleted
                    if id(pkt) in handled:
                        continue
                    if pkt.rid in injected_now and status[pkt.rid] == DeliveryStatus.PENDING:
                        pkt.status = DeliveryStatus.REJECTED
                        status[pkt.rid] = DeliveryStatus.REJECTED
                        stats.rejected += 1
                        trace.record(t, "reject", pkt.rid, node)
                    else:
                        pkt.status = DeliveryStatus.PREEMPTED
                        status[pkt.rid] = DeliveryStatus.PREEMPTED
                        stats.preempted += 1
                        trace.record(t, "drop", pkt.rid, node)
            buffers = new_buffers

        # anything still pending after the horizon was never handled
        for rid, st in status.items():
            if st == DeliveryStatus.PENDING:
                status[rid] = DeliveryStatus.REJECTED
                stats.rejected += 1
            elif st == DeliveryStatus.INJECTED:
                status[rid] = DeliveryStatus.PREEMPTED
                stats.preempted += 1
        return SimulationResult(stats=stats, status=status, trace=self.trace,
                                engine="reference")

    def _validate_decision(self, node, candidates, decision, B, c) -> None:
        cand_ids = {id(p) for p in candidates}
        seen: set = set()
        for axis, pkts in decision.forward.items():
            c_edge = self.network.capacity_of(node, axis) \
                if 0 <= axis < self.network.d else c
            if len(pkts) > c_edge:
                raise CapacityError(
                    f"node {node} forwards {len(pkts)} > c={c_edge} on axis {axis}"
                )
            head_ok = 0 <= axis < self.network.d and \
                self.network.has_edge(node, axis)
            if pkts and not head_ok:
                raise ValidationError(f"node {node} has no outgoing axis {axis}")
            for pkt in pkts:
                if id(pkt) not in cand_ids:
                    raise ValidationError(f"decision forwards foreign packet {pkt.rid}")
                if id(pkt) in seen:
                    raise ValidationError(f"packet {pkt.rid} scheduled twice")
                seen.add(id(pkt))
        if len(decision.store) > B:
            raise CapacityError(
                f"node {node} stores {len(decision.store)} > B={B}"
            )
        for pkt in decision.store:
            if id(pkt) not in cand_ids:
                raise ValidationError(f"decision stores foreign packet {pkt.rid}")
            if id(pkt) in seen:
                raise ValidationError(f"packet {pkt.rid} scheduled twice")
            seen.add(id(pkt))


class PlanPolicy(Policy):
    """Policy that replays precomputed space-time paths.

    ``plans`` maps request id to an :class:`~repro.spacetime.graph.STPath`
    in *untilted* coordinates; requests without a plan are rejected at
    injection.  The per-step action of each packet is precomputed into a
    ``(rid, t) -> action`` table, so ``decide`` is a dictionary lookup.
    """

    def __init__(self, network: Network, plans: dict):
        self.network = network
        d = network.d
        self.actions: dict = {}  # (rid, t) -> ("F", axis) | ("S",)
        for rid, path in plans.items():
            v = path.start
            t = sum(v[:-1]) + v[-1]
            for move in path.moves:
                if move == d:
                    self.actions[(rid, t)] = ("S",)
                else:
                    self.actions[(rid, t)] = ("F", move)
                t += 1

    def decide(self, node, t, candidates, network) -> Decision:
        decision = Decision()
        for pkt in candidates:
            action = self.actions.get((pkt.rid, t))
            if action is None:
                continue  # no plan here: packet is deleted by the engine
            if action[0] == "S":
                decision.store.append(pkt)
            else:
                decision.forward.setdefault(action[1], []).append(pkt)
        return decision


def execute_plan(network: Network, plans: dict, requests, horizon: int,
                 trace: bool = False, engine: str | None = None) -> SimulationResult:
    """Run precomputed space-time paths through the engine.

    The engine enforces ``B``/``c``, so an infeasible plan raises
    :class:`~repro.util.errors.CapacityError` -- this is the cross-check
    between the planners' numpy ledgers and the step semantics.  ``engine``
    selects the implementation (see :mod:`repro.network.engine`); the
    default honours ``REPRO_ENGINE``.
    """
    from repro.network.engine import make_engine  # avoid an import cycle

    sim = make_engine(network, PlanPolicy(network, plans), engine=engine,
                      trace=trace)
    return sim.run(requests, horizon)
