"""Event tracing for simulations (opt-in, off by default for speed)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    """One simulator event.

    ``kind`` is one of ``inject``, ``reject``, ``forward``, ``store``,
    ``drop``, ``deliver``, ``late``.
    """

    t: int
    kind: str
    rid: int
    node: tuple
    detail: str = ""


@dataclass
class TraceRecorder:
    """Collects :class:`Event` records when ``enabled``."""

    enabled: bool = False
    events: list = field(default_factory=list)

    def record(self, t: int, kind: str, rid: int, node: tuple, detail: str = "") -> None:
        if self.enabled:
            self.events.append(Event(t, kind, rid, node, detail))

    def of_kind(self, kind: str) -> list:
        return [e for e in self.events if e.kind == kind]

    def for_request(self, rid: int) -> list:
        return [e for e in self.events if e.rid == rid]

    def __len__(self) -> int:
        return len(self.events)
