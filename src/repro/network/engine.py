"""Engine selection: the reference simulator vs the array-backed engine.

An *engine* is anything that implements the :class:`Engine` protocol --
``run(requests, horizon) -> SimulationResult`` over a fixed network and
policy.  Two implementations ship:

* ``"reference"`` -- :class:`~repro.network.simulator.Simulator`, the
  per-packet Python loop.  Supports every :class:`Policy`, validates
  arbitrary decisions, and records traces.  Use it for correctness work,
  custom policies, and debugging.
* ``"fast"`` -- :class:`~repro.network.fast_engine.FastEngine`, the
  numpy group-by engine.  Supports the greedy family and plan replay with
  bit-identical results, at a fraction of the wall-clock.  Use it for
  sweeps and large instances.

Resolution order for the engine name: an explicit argument, then the
``REPRO_ENGINE`` environment variable, then the module default set by
:func:`set_default_engine` (initially ``"reference"``).  The environment
hook is how the bench suite runs end to end on either engine without
threading a flag through every experiment.
"""

from __future__ import annotations

import os
from typing import Protocol

from repro.network.fast_engine import FastEngine
from repro.network.simulator import SimulationResult, Simulator
from repro.util.errors import ValidationError

#: environment variable consulted when no explicit engine is given
ENGINE_ENV_VAR = "REPRO_ENGINE"

ENGINES = {"reference": Simulator, "fast": FastEngine}

_default_engine = "reference"


class Engine(Protocol):
    """A simulation engine bound to a network and a policy."""

    def run(self, requests, horizon: int) -> SimulationResult:
        """Simulate ``requests`` for time steps ``0..horizon`` inclusive."""
        ...


def _check_name(name: str) -> str:
    if name not in ENGINES:
        raise ValidationError(
            f"unknown engine {name!r}; choose from {sorted(ENGINES)}"
        )
    return name


def get_default_engine() -> str:
    """The engine name used when neither argument nor env var is set."""
    return _default_engine


def set_default_engine(name: str) -> None:
    """Set the process-wide default engine (``"reference"`` or ``"fast"``)."""
    global _default_engine
    _default_engine = _check_name(name)


def resolve_engine_name(engine: str | None = None) -> str:
    """Resolve ``engine`` via argument > ``REPRO_ENGINE`` > default."""
    if engine is not None:
        return _check_name(engine)
    env = os.environ.get(ENGINE_ENV_VAR)
    if env:
        return _check_name(env)
    return _default_engine


def make_engine(network, policy, engine: str | None = None,
                trace: bool = False) -> Engine:
    """Build the engine named by :func:`resolve_engine_name`.

    When ``"fast"`` is selected but the request needs reference features
    (tracing, or a policy the fast engine cannot vectorize), the reference
    engine is returned instead, so experiment code can flip engines
    globally without special-casing individual policies.
    """
    name = resolve_engine_name(engine)
    if name == "fast" and (trace or not FastEngine.supports(policy)):
        name = "reference"
    return ENGINES[name](network, policy, trace=trace)
