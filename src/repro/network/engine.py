"""Engine selection and the vectorized decision ABI.

An *engine* is anything that implements the :class:`Engine` protocol --
``run(requests, horizon) -> SimulationResult`` over a fixed network and
policy.  Two implementations ship:

* ``"reference"`` -- :class:`~repro.network.simulator.Simulator`, the
  per-packet Python loop.  Supports every :class:`Policy`, validates
  arbitrary decisions, and records traces.  Use it for correctness work
  and debugging.
* ``"fast"`` -- :class:`~repro.network.fast_engine.FastEngine`, the
  numpy group-by engine, at a fraction of the wall-clock.  Use it for
  sweeps and large instances.

A third *name*, ``"batch"``, selects the stacked batch path: eligible
scenarios of one ``run_batch`` call are packed into a single array
program and executed together by
:class:`~repro.network.fast_batch_engine.FastBatchEngine` (the
:class:`BatchEngine` protocol below).  For a single run the name
degrades to ``"fast"`` -- a stack of one is just the fast engine -- and
scenarios no batch program can express fall back per-scenario, exactly
like ``"fast"`` falls back to the reference engine.

Resolution order for the engine name: an explicit argument, then the
``REPRO_ENGINE`` environment variable, then the module default set by
:func:`set_default_engine` (initially ``"reference"``).  The environment
hook is how the bench suite runs end to end on either engine without
threading a flag through every experiment.

Orthogonal to the engine name, the ``REPRO_KERNEL`` environment variable
(``auto`` | ``numba`` | ``numpy``, see :mod:`repro.network.kernel`)
selects the *step kernel* backend the array engines resolve each tick
with: the numba-compiled admission kernel when available, the
bit-identical pure-numpy body otherwise.  The selection is recorded in
``RunReport.meta["kernel"]`` and shown by ``repro list``; an explicit
``numba`` with no numba installed fails loudly rather than silently
degrading.

The vectorized decision ABI
---------------------------
The fast engine does not hard-code its policies.  Each time step it
builds one :class:`StepView` -- the array form of every candidate packet
that survived delivery -- and asks the policy for one
:class:`VectorDecision`: per-packet boolean ``forward``/``store`` masks
plus the forwarding ``axis``.  Anything implementing that single call is
a :class:`VectorPolicy` and runs at array speed.  Three lifts cover the
rest:

* policies exposing ``fast_priority`` (the greedy family) get the
  built-in :class:`~repro.network.fast_engine.GreedyVectorPolicy`;
* :class:`~repro.network.simulator.PlanPolicy` replay is compiled into a
  vector policy over per-packet action tables;
* any other scalar :class:`~repro.network.simulator.Policy` is lifted by
  :class:`~repro.network.fast_engine.BatchedPolicyAdapter`: one grouped
  Python call per *node*-step instead of per packet.

The ABI contract (what ``tests/test_differential.py`` fuzz-enforces):

1. the engine, not the policy, accounts and enforces ``B``/``c`` -- a
   decision exceeding them raises
   :class:`~repro.util.errors.CapacityError` exactly like the reference
   validator; a forward off the grid raises
   :class:`~repro.util.errors.ValidationError`;
2. packets neither forwarded nor stored are deleted by the engine
   (rejected at injection time, preempted afterwards);
3. decisions must be *order-insensitive* functions of the candidate set
   (use a total priority -- break ties on ``rid``).  The reference and
   fast engines present candidates in different orders, and bit-identical
   results across engines -- the invariant the result cache rests on --
   hold only for policies that do not depend on that order.  A policy
   that knowingly violates this sets ``vectorize = False``, which pins it
   to the reference engine even under a global ``REPRO_ENGINE=fast``;
4. the batched adapter re-materializes candidate
   :class:`~repro.network.packet.Packet` records each step; scalar
   policies must not key state on packet object identity across steps.

Node Model 2 (Appendix F) is not a :class:`Policy` but different node
semantics; :func:`make_engine` routes policies carrying ``node_model = 2``
(:class:`~repro.network.node_models.Model2Policy`) to the Model 2
engines -- the vectorized
:class:`~repro.network.node_models.FastModel2Engine` under ``"fast"``,
the per-packet :class:`~repro.network.node_models.Model2LineSimulator`
otherwise.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.network.kernel import (  # noqa: F401  (re-exported: the step
    KERNEL_ENV_VAR,  # kernel is part of the engine-selection surface)
    KERNEL_NAMES,
    active_kernel,
    resolve_kernel_name,
)
from repro.network.simulator import SimulationResult
from repro.util.errors import ValidationError

#: environment variable consulted when no explicit engine is given
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: the valid engine names (implementations resolve lazily in make_engine)
ENGINE_NAMES = ("reference", "fast", "batch")

_default_engine = "reference"

#: encodes ``deadline = infinity`` in the ABI's int64 deadline arrays
NO_DEADLINE = int(np.iinfo(np.int64).max)


class Engine(Protocol):
    """A simulation engine bound to a network and a policy."""

    def run(self, requests, horizon: int) -> SimulationResult:
        """Simulate ``requests`` for time steps ``0..horizon`` inclusive."""
        ...


class BatchEngine(Protocol):
    """A stacked engine: many (network, policy, requests, horizon) jobs
    resolved together as one array program.

    ``run_many`` returns one :class:`SimulationResult` per job, each
    bit-identical to what the per-scenario engines would produce for that
    job alone -- the invariant that lets ``run_batch`` group eligible
    scenarios freely.  Jobs a batch program cannot express must be
    rejected at construction time (clean
    :class:`~repro.util.errors.ValidationError`, not a wrong result);
    callers pre-filter with the implementation's ``supports`` predicate.
    """

    def run_many(self) -> list:
        ...


# -- the vectorized decision ABI -----------------------------------------


@dataclass(frozen=True)
class StepView:
    """Array view of one time step's candidate packets (post-delivery).

    Row ``i`` describes one candidate packet; all per-packet arrays share
    that row order.  ``index`` maps rows back to the engine's request
    order (``requests[index[i]]`` is row ``i``'s
    :class:`~repro.network.packet.Request`), which is how compiled
    policies (plan replay) look up per-request tables.
    """

    t: int  # current time step
    network: object  # the Network (dims, buffer_size, capacity, d)
    requests: tuple  # all requests of the run, in engine order
    index: np.ndarray  # row -> position in ``requests``
    node_id: np.ndarray  # flat row-major node index (Network.node_index)
    loc: np.ndarray  # (k, d) current coordinates
    src: np.ndarray  # (k, d) source coordinates
    dst: np.ndarray  # (k, d) destination coordinates
    arrival: np.ndarray  # injection times
    deadline: np.ndarray  # deadlines, ``NO_DEADLINE`` when unbounded
    rid: np.ndarray  # unique request ids (the universal tie-break)
    #: scenario id per row in stacked batch execution (None on the
    #: per-scenario engines).  Batched views keep ``node_id`` globally
    #: unique across scenarios, so group-local policies need not read
    #: this; it exists for policies that want per-scenario context.
    batch: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.rid.size

    def remaining(self) -> np.ndarray:
        """Hops left to each destination (the nearest-to-go key).

        Delegates to the network's geometry so wrapping axes (ring,
        torus) count mod the side length.
        """
        return self.network.togo_array(self.loc, self.dst).sum(axis=1)

    def hops(self) -> np.ndarray:
        """Hops travelled so far (exact for 1-bend routes; wrapping axes
        reconstruct travel mod the side length)."""
        return self.network.hops_array(self.src, self.loc).sum(axis=1)

    def injected_now(self) -> np.ndarray:
        """Mask of packets revealed (locally input) this very step."""
        return self.arrival == self.t


@dataclass
class VectorDecision:
    """A policy's answer for one step: what to forward, what to keep.

    ``forward``/``store`` are boolean masks over the step view's rows;
    ``axis`` gives the outgoing axis per row (only read where ``forward``
    is set).  Rows in neither mask are deleted by the engine.
    """

    forward: np.ndarray
    axis: np.ndarray
    store: np.ndarray


class VectorPolicy(Protocol):
    """The vectorized decision ABI: one array call per time step."""

    def decide_vector(self, view: StepView) -> VectorDecision:
        ...


def is_vector_policy(policy) -> bool:
    """True when ``policy`` implements the vectorized decision ABI."""
    return callable(getattr(policy, "decide_vector", None))


# -- engine selection -----------------------------------------------------


def _check_name(name: str) -> str:
    if name not in ENGINE_NAMES:
        raise ValidationError(
            f"unknown engine {name!r}; choose from {sorted(ENGINE_NAMES)}"
        )
    return name


def get_default_engine() -> str:
    """The engine name used when neither argument nor env var is set."""
    return _default_engine


def set_default_engine(name: str) -> None:
    """Set the process-wide default engine (any :data:`ENGINE_NAMES`)."""
    global _default_engine
    _default_engine = _check_name(name)


def resolve_engine_name(engine: str | None = None) -> str:
    """Resolve ``engine`` via argument > ``REPRO_ENGINE`` > default."""
    if engine is not None:
        return _check_name(engine)
    env = os.environ.get(ENGINE_ENV_VAR)
    if env:
        return _check_name(env)
    return _default_engine


def make_engine(network, policy, engine: str | None = None,
                trace: bool = False) -> Engine:
    """Build the engine named by :func:`resolve_engine_name`.

    When ``"fast"`` is selected but the request needs reference features
    (tracing, or a policy no fast path can express), the reference engine
    is returned instead, so experiment code can flip engines globally
    without special-casing individual policies.  Policies carrying
    ``node_model = 2`` route to the Model 2 engines (see module docs).
    """
    # imported here, not at module top: fast_engine/node_models import the
    # ABI classes above, so this module must finish loading first
    from repro.network.fast_engine import FastEngine
    from repro.network.simulator import Simulator

    name = resolve_engine_name(engine)
    if name == "batch":
        # stacking happens in run_batch; a single run degrades to "fast"
        name = "fast"
    if getattr(policy, "node_model", 1) == 2:
        from repro.network.node_models import (
            FastModel2Engine,
            Model2LineSimulator,
        )

        if name == "fast" and not trace \
                and FastModel2Engine.supports(policy, network):
            return FastModel2Engine(network, policy)
        return Model2LineSimulator(network, policy, trace=trace)
    if name == "fast" and not trace and FastEngine.supports(policy):
        return FastEngine(network, policy, trace=trace)
    return Simulator(network, policy, trace=trace)
