"""Aggregate statistics of a simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NetworkStats:
    """Counters accumulated by the simulator.

    ``max_link_load``/``max_buffer_load`` record the worst observed
    utilisation (the simulator *enforces* the B and c bounds; these record
    how close the run came).

    ``delivery_times`` records the delivery step of every packet that
    reached its destination -- on time *or* late -- so latency metrics see
    the full distribution; ``throughput`` still credits only on-time
    deliveries.
    """

    delivered: int = 0
    late: int = 0
    rejected: int = 0
    preempted: int = 0
    forwards: int = 0
    stores: int = 0
    max_link_load: int = 0
    max_buffer_load: int = 0
    steps: int = 0
    delivery_times: dict = field(default_factory=dict)  # rid -> delivery step

    @property
    def throughput(self) -> int:
        """Packets delivered before their deadline (the objective)."""
        return self.delivered

    @property
    def injected(self) -> int:
        return self.delivered + self.late + self.preempted

    def summary(self) -> str:
        return (
            f"throughput={self.delivered} late={self.late} "
            f"rejected={self.rejected} preempted={self.preempted} "
            f"steps={self.steps} max_link={self.max_link_load} "
            f"max_buf={self.max_buffer_load}"
        )
