"""Stacked batch engine: a whole scenario sweep as one array program.

:class:`FastBatchEngine` takes many independent jobs -- each a
``(network, policy, requests, horizon)`` quadruple with Model 1
semantics -- and executes them *together*: every per-packet array of
:class:`~repro.network.fast_engine.FastEngine` grows a batch dimension
(one scenario id per row), nodes get per-scenario id offsets so no
contention group ever mixes scenarios, and each global tick resolves the
decisions of *all* scenarios in one grouped lexsort/scatter pass.  A
sweep of hundreds of small grids then costs per step what a single
scenario costs -- numpy call overhead is paid once per tick, not once
per tick per scenario.

Memory model (padding and masking)
----------------------------------
Jobs are concatenated, not tiled: a row exists per *request*, so memory
is ``O(total requests x d_max)``.  Coordinate arrays are padded to the
widest grid dimension ``d_max`` with zeros and the padded dims have side
1, so padded axes never show distance-to-go and are never forwarded on.
Per-scenario horizon/liveness masks emulate each scenario's private
loop: a scenario whose horizon passed (or whose packets drained) stops
accumulating steps while the others keep ticking.  The stacking wins
when many small scenarios share the clock; one huge grid gains nothing
(there is nothing to amortize), and adapter-lifted scalar policies
cannot join at all (see :meth:`FastBatchEngine.unsupported_reason`).

Policy multiplexing
-------------------
Decisions reuse the PR-4 ``StepView -> VectorDecision`` ABI unchanged.
Rows are grouped per step by *program*:

* the greedy family -- *every* greedy job, whatever its
  ``fast_priority``, merges into a single stacked program
  (:class:`_StackedGreedyProgram`) that selects each row's sort keys by
  a per-request priority code; contention groups are scenario-local, so
  priorities never mix inside a group and the ranks come out exactly as
  each job's own priority order;
* native vector policies that declare a ``batch_program`` label (the
  opt-in that their ``decide_vector`` is *group-local*: decisions within
  a node group depend only on that group's rows) merge per label;
* :class:`~repro.network.simulator.PlanPolicy` replay -- per-job action
  tables are compiled and concatenated into one position-indexed table,
  so any number of plan replays is a single program.

A batched :class:`~repro.network.engine.StepView` carries the batch-id
column and a stacked network facade whose ``buffer_size``/``capacity``
are per-row arrays (``d`` is ``d_max``);
:func:`~repro.network.fast_engine.greedy_masks` accepts both forms, so
``GreedyVectorPolicy`` and native policies built on it run unmodified.

Every result is bit-identical to the per-scenario engines' -- identical
``status`` maps, identical counters, identical step accounting -- which
is what lets ``run_batch`` stack scenarios freely without perturbing the
result cache (fuzz-enforced by ``tests/test_differential.py``).
"""

from __future__ import annotations

import numpy as np

from repro.network import kernel
from repro.network.engine import StepView
from repro.network.fast_engine import (
    _DELIVERED,
    _INJECTED,
    _LATE,
    _PREEMPTED,
    _REJECTED,
    _finalize_result,
    _PlanVectorPolicy,
    _request_arrays,
    FastEngine,
    greedy_masks,
)
from repro.network.simulator import PlanPolicy, Policy, SimulationResult
from repro.network.stats import NetworkStats
from repro.network.trace import TraceRecorder
from repro.util.errors import CapacityError, ValidationError


class _StackedNetworkView:
    """The ``view.network`` of a batched step: per-row capacities.

    ``d`` is the widest grid dimension of the stack; ``buffer_size`` and
    ``capacity`` are arrays aligned with the view's rows (every row
    carries its scenario's ``B``/``c``).  ``dims``/``wrap`` are the
    per-row ``(k, d)`` side lengths and wraparound flags (``wrap`` is
    ``None`` when no stacked scenario wraps), and ``cap_flat`` the
    global per-``(node, axis)`` capacity table (``None`` when every
    stacked network is capacity-uniform).  Batch programs must read the
    network only through these attributes and the geometry methods
    below, which mirror :class:`~repro.network.topology.Network`'s --
    :func:`greedy_masks` does.
    """

    __slots__ = ("d", "buffer_size", "capacity", "dims", "wrap", "cap_flat")

    def __init__(self, d: int, buffer_size, capacity, dims=None, wrap=None,
                 cap_flat=None):
        self.d = d
        self.buffer_size = buffer_size
        self.capacity = capacity
        self.dims = dims
        self.wrap = wrap
        self.cap_flat = cap_flat

    def togo_array(self, loc, dst):
        togo = dst - loc
        if self.wrap is not None:
            togo = np.where(self.wrap, togo % self.dims, togo)
        return togo

    def hops_array(self, src, loc):
        hops = loc - src
        if self.wrap is not None:
            hops = np.where(self.wrap, hops % self.dims, hops)
        return hops

    def edge_capacity(self, node_id, axis):
        if self.cap_flat is None:
            return self.capacity  # per-row c of each row's scenario
        return self.cap_flat[node_id * self.d + axis]


class _StackedPlanProgram(_PlanVectorPolicy):
    """Concatenation of per-job compiled plan tables (global positions)."""

    def __init__(self, d, t0, length, off, codes):
        self._d = d
        self._t0 = t0
        self._len = length
        self._off = off
        self._codes = codes


#: per-request priority codes of the merged greedy program
_GREEDY_CODES = {"fifo": 0, "lifo": 1, "longest": 2, "ntg": 3}


class _StackedGreedyProgram:
    """Every greedy-family job of a stack as *one* decision program.

    Contention groups are scenario-local (node ids carry per-scenario
    offsets), so rows of different priorities never meet in a group --
    selecting each row's sort keys by its job's priority code therefore
    ranks every group exactly as that job's own
    :class:`~repro.network.fast_engine.GreedyVectorPolicy` would.  The
    unified key tuple appends a redundant final ``rid`` key where a
    priority's own tuple is shorter; within a priority-pure group that is
    a no-op (the order is already total by then).  One program instead of
    one per priority keeps the per-tick cost flat in the number of
    priority families a sweep mixes.
    """

    __slots__ = ("_pcode",)

    def __init__(self, pcode):
        self._pcode = pcode  # priority code per global request position

    def decide_vector(self, view: StepView):
        p = self._pcode[view.index]
        arrival, rid = view.arrival, view.rid
        remaining = view.remaining()
        # fifo: (arrival, rid) / lifo: (-arrival, -rid)
        # longest: (-remaining, arrival, rid) / ntg: (remaining, arrival, rid)
        k1 = np.where(p == 0, arrival,
                      np.where(p == 1, -arrival,
                               np.where(p == 2, -remaining, remaining)))
        k2 = np.where(p == 0, rid, np.where(p == 1, -rid, arrival))
        k3 = np.where(p == 1, -rid, rid)
        return greedy_masks(view, (k1, k2, k3))


def _steps_stateless(policy) -> bool:
    """True when the policy never observes step boundaries -- required to
    share one stacked clock across scenarios."""
    fn = getattr(type(policy), "on_step_begin", None)
    return fn is None or fn is Policy.on_step_begin


class FastBatchEngine:
    """Run many Model 1 jobs as one stacked array program.

    ``jobs`` is a sequence of ``(network, policy, requests, horizon)``
    quadruples.  Construction raises
    :class:`~repro.util.errors.ValidationError` when any job's policy has
    no batch program (see :meth:`unsupported_reason`); callers wanting
    graceful fallback pre-filter with :meth:`supports` -- exactly the
    contract :class:`~repro.network.fast_engine.FastEngine` has with
    :func:`~repro.network.engine.make_engine`.
    """

    def __init__(self, jobs):
        jobs = [tuple(job) for job in jobs]
        for i, (network, policy, requests, horizon) in enumerate(jobs):
            reason = self.unsupported_reason(policy)
            if reason is not None:
                raise ValidationError(
                    f"job {i} ({type(policy).__name__}) cannot join a "
                    f"stacked batch: {reason}"
                )
        self.jobs = jobs

    # -- eligibility ------------------------------------------------------

    @classmethod
    def unsupported_reason(cls, policy) -> str | None:
        """Why ``policy`` cannot join a stacked batch (None when it can).

        The batch-program forms mirror the fast engine's lifts minus the
        scalar adapter: plan replay, the built-in greedy priorities, and
        native vector policies that opt in with a ``batch_program``
        label.  The label asserts group-locality -- decisions inside one
        node's contention group depend only on that group's rows -- which
        is what makes stacking invisible to the policy.
        """
        if getattr(policy, "vectorize", True) is False:
            return "policy sets vectorize=False (pinned to the reference engine)"
        if getattr(policy, "node_model", 1) == 2:
            return "Model 2 node semantics run on the dedicated Model 2 engines"
        if isinstance(policy, PlanPolicy):
            return None
        if callable(getattr(policy, "decide_vector", None)):
            if getattr(policy, "batch_program", None) is None:
                return ("native vector policy declares no batch_program "
                        "(the group-locality opt-in)")
            if not _steps_stateless(policy):
                return ("policy keeps per-step state (on_step_begin); "
                        "stacked scenarios share one clock")
            return None
        if getattr(policy, "fast_priority", None) in \
                FastEngine.SUPPORTED_PRIORITIES:
            if not _steps_stateless(policy):
                return ("policy keeps per-step state (on_step_begin); "
                        "stacked scenarios share one clock")
            return None
        return ("policy has no batch program (scalar policies run "
                "per-scenario through the batched adapter)")

    @classmethod
    def supports(cls, policy) -> bool:
        """True when ``policy`` can join a stacked batch execution."""
        return cls.unsupported_reason(policy) is None

    # -- program grouping -------------------------------------------------

    def _assign_programs(self, d_max, off_j, cnt_j, rid_parts, total):
        """``(programs, prog_of_job)``: one entry per distinct decision
        program, and each job's program index.  All plan jobs compile into
        a single merged program over global request positions, and all
        greedy-family jobs (any mix of priorities) merge into one
        :class:`_StackedGreedyProgram` -- the per-tick cost is per
        *program*, so merging keeps it flat in sweep heterogeneity."""
        programs: list = []
        prog_key: dict = {}
        prog_of_job = np.zeros(len(self.jobs), dtype=np.int64)
        plan_jobs: list = []
        greedy_jobs: list = []
        for b, (network, policy, requests, horizon) in enumerate(self.jobs):
            if isinstance(policy, PlanPolicy):
                key = ("plan",)
                program = None  # merged below
                plan_jobs.append(b)
            elif callable(getattr(policy, "decide_vector", None)):
                key = ("native", type(policy), policy.batch_program)
                program = policy
            else:
                key = ("greedy",)
                program = None  # merged below
                greedy_jobs.append(b)
            pid = prog_key.get(key)
            if pid is None:
                pid = len(programs)
                prog_key[key] = pid
                programs.append(program)
            prog_of_job[b] = pid
        if greedy_jobs:
            pcode = np.zeros(total, dtype=np.int64)
            for b in greedy_jobs:
                sl = slice(off_j[b], off_j[b] + cnt_j[b])
                pcode[sl] = _GREEDY_CODES[self.jobs[b][1].fast_priority]
            programs[prog_key[("greedy",)]] = _StackedGreedyProgram(pcode)
        if plan_jobs:
            t0 = np.zeros(total, dtype=np.int64)
            length = np.zeros(total, dtype=np.int64)
            off = np.zeros(total, dtype=np.int64)
            chunks: list = []
            pos = 0
            for b in plan_jobs:
                part = _PlanVectorPolicy(self.jobs[b][1], d_max, rid_parts[b])
                sl = slice(off_j[b], off_j[b] + cnt_j[b])
                t0[sl] = part._t0
                length[sl] = part._len
                off[sl] = part._off + pos
                pos += part._codes.size
                chunks.append(part._codes)
            codes = (np.concatenate(chunks) if chunks
                     else np.empty(0, dtype=np.int64))
            merged = _StackedPlanProgram(d_max, t0, length, off, codes)
            programs[prog_key[("plan",)]] = merged
        return programs, prog_of_job

    # -- main loop --------------------------------------------------------

    def run_many(self) -> list:
        """Execute every job; one :class:`SimulationResult` per job, in
        job order, each bit-identical to a per-scenario run."""
        jobs = self.jobs
        m = len(jobs)
        if m == 0:
            return []
        d_max = max(job[0].d for job in jobs)

        # -- stack the per-job request state --------------------------------
        cnt_j = np.zeros(m, dtype=np.int64)
        horizon_j = np.zeros(m, dtype=np.int64)
        last_arr_j = np.full(m, -1, dtype=np.int64)
        B_j = np.zeros(m, dtype=np.int64)
        c_j = np.zeros(m, dtype=np.int64)
        node_off = np.zeros(m, dtype=np.int64)
        dims2d = np.ones((m, d_max), dtype=np.int64)
        wrap2d = np.zeros((m, d_max), dtype=bool)
        strides2d = np.zeros((m, d_max), dtype=np.int64)
        # global per-(node, axis) capacity table, only when a stacked
        # network overrides per-edge capacities
        need_caps = any(job[0].link_caps for job in jobs)
        cap_parts: list = []
        src_parts, dst_parts, arr_parts, dl_parts, rid_parts = \
            [], [], [], [], []
        reqs_all: list = []
        nodes = 0
        for b, (network, policy, requests, horizon) in enumerate(jobs):
            reqs = tuple(requests)
            reqs_all.extend(reqs)
            cnt_j[b] = len(reqs)
            horizon_j[b] = int(horizon)
            B_j[b] = network.buffer_size
            c_j[b] = network.capacity
            node_off[b] = nodes
            nodes += network.n
            d_b = network.d
            dims2d[b, :d_b] = network.dims
            wrap2d[b, :d_b] = network.wrap
            if need_caps:
                part = np.full(network.n * d_max, network.capacity,
                               dtype=np.int64)
                for (tail, axis), cap in network.link_caps.items():
                    part[network.node_index(tail) * d_max + axis] = cap
                cap_parts.append(part)
            # row-major strides of the job's own grid; padded axes stay 0
            # (their coordinate is always 0, so they contribute nothing)
            strides2d[b, d_b - 1] = 1
            for axis in range(d_b - 2, -1, -1):
                strides2d[b, axis] = strides2d[b, axis + 1] * dims2d[b, axis + 1]
            if reqs:
                s, t, a, dl, r = _request_arrays(network, reqs)
                pad = d_max - d_b
                if pad:
                    s = np.pad(s, ((0, 0), (0, pad)))
                    t = np.pad(t, ((0, 0), (0, pad)))
                last_arr_j[b] = int(a.max())
            else:
                s = t = np.zeros((0, d_max), dtype=np.int64)
                a = dl = r = np.zeros(0, dtype=np.int64)
            src_parts.append(s)
            dst_parts.append(t)
            arr_parts.append(a)
            dl_parts.append(dl)
            rid_parts.append(r)
        off_j = np.concatenate(([0], np.cumsum(cnt_j)))[:-1]
        total = int(cnt_j.sum())
        src = np.concatenate(src_parts) if total else np.zeros((0, d_max), np.int64)
        dst = np.concatenate(dst_parts) if total else np.zeros((0, d_max), np.int64)
        arrival = np.concatenate(arr_parts) if total else np.zeros(0, np.int64)
        deadline = np.concatenate(dl_parts) if total else np.zeros(0, np.int64)
        rid = np.concatenate(rid_parts) if total else np.zeros(0, np.int64)
        bid = np.repeat(np.arange(m, dtype=np.int64), cnt_j)
        reqs_all = tuple(reqs_all)
        any_wrap = bool(wrap2d.any())
        cap_flat = np.concatenate(cap_parts) if need_caps else None

        programs, prog_of_job = self._assign_programs(
            d_max, off_j, cnt_j, rid_parts, total)
        prog_row = prog_of_job[bid]

        # -- mutable packet state -------------------------------------------
        loc = src.copy()
        alive = np.zeros(total, dtype=bool)
        scode = np.zeros(total, dtype=np.int64)  # _PENDING
        delivered_t = np.full(total, -1, dtype=np.int64)

        # -- per-scenario accumulators --------------------------------------
        running = cnt_j > 0  # empty jobs break at t=0 like the fast engine
        n_alive_j = np.zeros(m, dtype=np.int64)
        steps_j = np.zeros(m, dtype=np.int64)
        delivered_j = np.zeros(m, dtype=np.int64)
        late_j = np.zeros(m, dtype=np.int64)
        rejected_j = np.zeros(m, dtype=np.int64)
        preempted_j = np.zeros(m, dtype=np.int64)
        forwards_j = np.zeros(m, dtype=np.int64)
        stores_j = np.zeros(m, dtype=np.int64)
        max_link_j = np.zeros(m, dtype=np.int64)
        max_buf_j = np.zeros(m, dtype=np.int64)

        inj_order = kernel.injection_order(arrival)
        arr_sorted = arrival[inj_order]

        for t in range(0, int(horizon_j.max()) + 2):
            # each scenario's private loop: past its horizon, or drained
            # with no arrivals left, it stops ticking (exactly the fast
            # engine's break) while the others continue
            idx = np.flatnonzero(running)
            if idx.size == 0:
                break
            stop = (horizon_j[idx] < t) | \
                ((n_alive_j[idx] == 0) & (last_arr_j[idx] < t))
            if stop.any():
                for b in idx[stop]:
                    # packets stranded past the horizon leave the live set;
                    # finalize turns their INJECTED codes into PREEMPTED
                    alive[off_j[b]:off_j[b] + cnt_j[b]] = False
                running[idx[stop]] = False
                idx = idx[~stop]
                if idx.size == 0:
                    break
            steps_j[idx] += 1

            # local inputs revealed at time t (only for running scenarios)
            lo = np.searchsorted(arr_sorted, t, side="left")
            hi = np.searchsorted(arr_sorted, t, side="right")
            if hi > lo:
                rows = inj_order[lo:hi]
                rows = rows[running[bid[rows]]]
                if rows.size:
                    alive[rows] = True
                    n_alive_j += np.bincount(bid[rows], minlength=m)

            act = np.flatnonzero(alive)
            if act.size == 0:
                continue

            # deliveries first (Section 2.1)
            at_dest = (loc[act] == dst[act]).all(axis=1)
            done = act[at_dest]
            if done.size:
                on_time = t <= deadline[done]
                scode[done] = np.where(on_time, _DELIVERED, _LATE)
                delivered_t[done] = t
                db = bid[done]
                delivered_j += np.bincount(db[on_time], minlength=m)
                late_j += np.bincount(db[~on_time], minlength=m)
                alive[done] = False
                n_alive_j -= np.bincount(db, minlength=m)
            rem = act[~at_dest]
            if rem.size == 0:
                continue

            node_id = node_off[bid[rem]] + \
                (loc[rem] * strides2d[bid[rem]]).sum(axis=1)
            k = rem.size
            fwd_mask = np.zeros(k, dtype=bool)
            axis_arr = np.zeros(k, dtype=np.int64)
            store_mask = np.zeros(k, dtype=bool)
            prog_rem = prog_row[rem]
            for pid, program in enumerate(programs):
                pos = np.flatnonzero(prog_rem == pid) if len(programs) > 1 \
                    else np.arange(k)
                if pos.size == 0:
                    continue
                rows = rem[pos]
                rb = bid[rows]
                view = StepView(
                    t=t,
                    network=_StackedNetworkView(
                        d_max, B_j[rb], c_j[rb], dims2d[rb],
                        wrap2d[rb] if any_wrap else None, cap_flat),
                    requests=reqs_all, index=rows, node_id=node_id[pos],
                    loc=loc[rows], src=src[rows], dst=dst[rows],
                    arrival=arrival[rows], deadline=deadline[rows],
                    rid=rid[rows], batch=rb,
                )
                decision = program.decide_vector(view)
                f, a, s = self._check_decision(
                    decision, view, rb, loc, dims2d, wrap2d, B_j, c_j,
                    cap_flat, max_link_j, max_buf_j, d_max)
                fwd_mask[pos] = f
                axis_arr[pos] = a
                store_mask[pos] = s

            fwd = rem[fwd_mask]
            if fwd.size:
                fa = axis_arr[fwd_mask]
                loc[fwd, fa] += 1
                if any_wrap:
                    # identity on non-wrapping axes (heads were validated)
                    loc[fwd, fa] %= dims2d[bid[fwd], fa]
                scode[fwd] = _INJECTED
                forwards_j += np.bincount(bid[fwd], minlength=m)
            stored = rem[store_mask]
            if stored.size:
                scode[stored] = _INJECTED
                stores_j += np.bincount(bid[stored], minlength=m)
            dropped = rem[~fwd_mask & ~store_mask]
            if dropped.size:
                fresh = arrival[dropped] == t  # rejected at injection
                scode[dropped] = np.where(fresh, _REJECTED, _PREEMPTED)
                rejected_j += np.bincount(bid[dropped[fresh]], minlength=m)
                preempted_j += np.bincount(bid[dropped[~fresh]], minlength=m)
                alive[dropped] = False
                n_alive_j -= np.bincount(bid[dropped], minlength=m)

        # -- per-scenario finalize ------------------------------------------
        results: list = []
        for b in range(m):
            stats = NetworkStats(
                delivered=int(delivered_j[b]), late=int(late_j[b]),
                rejected=int(rejected_j[b]), preempted=int(preempted_j[b]),
                forwards=int(forwards_j[b]), stores=int(stores_j[b]),
                max_link_load=int(max_link_j[b]),
                max_buffer_load=int(max_buf_j[b]), steps=int(steps_j[b]),
            )
            o, n_b = int(off_j[b]), int(cnt_j[b])
            if n_b == 0:
                results.append(SimulationResult(
                    stats=stats, status={},
                    trace=TraceRecorder(enabled=False), engine="batch"))
                continue
            results.append(_finalize_result(
                stats, scode[o:o + n_b], rid[o:o + n_b],
                delivered_t[o:o + n_b], TraceRecorder(enabled=False),
                engine="batch"))
        return results

    # -- decision enforcement ---------------------------------------------

    @staticmethod
    def _check_decision(decision, view, rb, loc, dims2d, wrap2d, B_j, c_j,
                        cap_flat, max_link_j, max_buf_j, d_max):
        """Batched :meth:`FastEngine._check_decision`: one program's rows,
        per-row capacities, per-scenario load maxima.

        Programs are per-scenario, so a (node, axis) contention group
        never spans programs and per-call accounting is exact.
        """
        fwd_mask = np.asarray(decision.forward, dtype=bool)
        store_mask = np.asarray(decision.store, dtype=bool)
        axis_arr = np.asarray(decision.axis, dtype=np.int64)
        k = view.size
        if fwd_mask.shape != (k,) or store_mask.shape != (k,) \
                or axis_arr.shape != (k,):
            raise ValidationError(
                f"vector decision shapes {fwd_mask.shape}/{axis_arr.shape}/"
                f"{store_mask.shape} do not match the step view ({k} rows)"
            )
        both = fwd_mask & store_mask
        if both.any():
            i = int(np.flatnonzero(both)[0])
            raise ValidationError(
                f"packet {int(view.rid[i])} scheduled twice")

        if fwd_mask.any():
            fa = axis_arr[fwd_mask]
            if ((fa < 0) | (fa >= d_max)).any():
                raise ValidationError(
                    f"vector decision names an axis outside 0..{d_max - 1}")
            rows = view.index[fwd_mask]
            fb = rb[fwd_mask]
            heads = loc[rows, fa] + 1
            # an edge exists when the head stays on-grid, or the axis
            # wraps with more than one node
            bad = (heads >= dims2d[fb, fa]) & \
                (~wrap2d[fb, fa] | (dims2d[fb, fa] == 1))
            if bad.any():
                i = int(np.flatnonzero(bad)[0])
                raise ValidationError(
                    f"node {tuple(loc[rows[i], :])} has no outgoing axis "
                    f"{int(fa[i])} (batch scenario {int(fb[i])})"
                )
            gid = view.node_id[fwd_mask] * d_max + fa
            uniq, first, counts = np.unique(gid, return_index=True,
                                            return_counts=True)
            gb = fb[first]
            cap = cap_flat[uniq] if cap_flat is not None else c_j[gb]
            over = counts > cap
            if over.any():
                i = int(np.flatnonzero(over)[0])
                raise CapacityError(
                    f"decision forwards {int(counts[i])} > "
                    f"c={int(cap[i])} on a link "
                    f"(batch scenario {int(gb[i])})")
            np.maximum.at(max_link_j, gb, counts)

        if store_mask.any():
            nid = view.node_id[store_mask]
            sb = rb[store_mask]
            _, first, counts = np.unique(nid, return_index=True,
                                         return_counts=True)
            gb = sb[first]
            over = counts > B_j[gb]
            if over.any():
                i = int(np.flatnonzero(over)[0])
                raise CapacityError(
                    f"decision stores {int(counts[i])} > "
                    f"B={int(B_j[gb[i]])} at a node "
                    f"(batch scenario {int(gb[i])})")
            np.maximum.at(max_buf_j, gb, counts)
        return fwd_mask, axis_arr, store_mask
