"""Synchronous store-and-forward packet network substrate.

This subpackage implements the "Competitive Network Throughput Model" of
Aiello, Kushilevitz, Ostrovsky and Rosen [AKOR03] used by the paper
(Section 2): a synchronous network whose nodes hold at most ``B`` packets in
a local buffer and whose links carry at most ``c`` packets per time step.

Contents
--------
* :mod:`repro.network.packet` -- requests and runtime packet records.
* :mod:`repro.network.topology` -- uni-directional lines and d-dimensional
  grids (Section 2.2).
* :mod:`repro.network.simulator` -- the synchronous step engine with both
  policy-driven and plan-driven front ends.
* :mod:`repro.network.fast_engine` / :mod:`repro.network.engine` -- the
  vectorized array-backed engine and the engine-selection protocol.
* :mod:`repro.network.node_models` -- the two node-functionality models of
  Appendix F.
* :mod:`repro.network.stats` / :mod:`repro.network.trace` -- accounting.
"""

from repro.network.packet import DeliveryStatus, Packet, Request
from repro.network.topology import GridNetwork, LineNetwork, Network
from repro.network.simulator import SimulationResult, Simulator, execute_plan
from repro.network.stats import NetworkStats
from repro.network.fast_engine import FastEngine
from repro.network.fast_batch_engine import FastBatchEngine
from repro.network.engine import (
    BatchEngine,
    Engine,
    get_default_engine,
    make_engine,
    resolve_engine_name,
    set_default_engine,
)

__all__ = [
    "BatchEngine",
    "DeliveryStatus",
    "Engine",
    "FastBatchEngine",
    "FastEngine",
    "GridNetwork",
    "LineNetwork",
    "Network",
    "NetworkStats",
    "Packet",
    "Request",
    "SimulationResult",
    "Simulator",
    "execute_plan",
    "get_default_engine",
    "make_engine",
    "resolve_engine_name",
    "set_default_engine",
]
