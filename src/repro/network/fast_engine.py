"""Array-backed fast engine: vectorized Model 1 semantics.

:class:`FastEngine` replays the exact step dynamics of
:class:`~repro.network.simulator.Simulator` (Section 2.1) but packs all
packet state into numpy arrays -- location, axis-to-go, arrival, deadline
-- and resolves each time step with grouped array operations instead of
per-packet Python dicts.  One step costs a handful of ``lexsort``/scatter
passes over the *live* packets, so large grid workloads run one to two
orders of magnitude faster than the reference engine.

Supported policies:

* the greedy family -- any policy exposing a ``fast_priority`` attribute
  naming one of the built-in priority orders (``fifo``, ``lifo``,
  ``longest``, ``ntg``).  :class:`~repro.baselines.greedy.GreedyPolicy`
  and :class:`~repro.baselines.nearest_to_go.NearestToGoPolicy` do;
* :class:`~repro.network.simulator.PlanPolicy` replay, including the
  ``B``/``c`` feasibility checks (:class:`~repro.util.errors.CapacityError`
  on violation), so planners can be cross-checked at scale.

Anything else (custom ad-hoc policies, tracing) needs the per-packet hooks
of the reference engine; :func:`~repro.network.engine.make_engine` falls
back automatically.  Both engines emit the same
:class:`~repro.network.simulator.SimulationResult`: identical ``status``
maps and identical :class:`~repro.network.stats.NetworkStats` counters.
The priority orders are total (unique request id as final tie-break), so
parity is exact, not just statistical.
"""

from __future__ import annotations

import numpy as np

from repro.network.packet import DeliveryStatus
from repro.network.simulator import PlanPolicy, SimulationResult
from repro.network.stats import NetworkStats
from repro.network.topology import Network
from repro.network.trace import TraceRecorder
from repro.util.errors import CapacityError, ValidationError

# integer status codes used inside the array loop
_PENDING, _REJECTED, _INJECTED, _PREEMPTED, _DELIVERED, _LATE = range(6)

_CODE_TO_STATUS = {
    _PENDING: DeliveryStatus.PENDING,
    _REJECTED: DeliveryStatus.REJECTED,
    _INJECTED: DeliveryStatus.INJECTED,
    _PREEMPTED: DeliveryStatus.PREEMPTED,
    _DELIVERED: DeliveryStatus.DELIVERED,
    _LATE: DeliveryStatus.LATE,
}

#: encodes ``deadline = infinity`` in the deadline array
_NO_DEADLINE = np.iinfo(np.int64).max


def _priority_keys(name: str, arrival, rid, remaining):
    """Sort keys (most significant first) matching the reference policies'
    Python tuples; every order ends in the unique ``rid`` so it is total."""
    if name == "fifo":
        return (arrival, rid)
    if name == "lifo":
        return (-arrival, -rid)
    if name == "longest":
        return (-remaining, arrival, rid)
    if name == "ntg":
        return (remaining, arrival, rid)
    raise ValidationError(f"unknown fast priority {name!r}")


def _grouped_rank(gid, keys):
    """Rank of each element within its ``gid`` group under ``keys``.

    Returns ``(rank, group_counts)`` where ``rank[i]`` is the 0-based
    position of element ``i`` inside its group sorted by ``keys`` (most
    significant first) and ``group_counts`` holds the size of each group
    (one entry per distinct gid, order unspecified).
    """
    order = np.lexsort(tuple(reversed(keys)) + (gid,))
    g = gid[order]
    new_group = np.empty(len(g), dtype=bool)
    new_group[0] = True
    new_group[1:] = g[1:] != g[:-1]
    starts = np.flatnonzero(new_group)
    counts = np.diff(np.append(starts, len(g)))
    rank_sorted = np.arange(len(g)) - np.repeat(starts, counts)
    rank = np.empty(len(g), dtype=np.int64)
    rank[order] = rank_sorted
    return rank, counts


class FastEngine:
    """Vectorized drop-in for :class:`~repro.network.simulator.Simulator`.

    Construction raises :class:`~repro.util.errors.ValidationError` for
    unsupported policies or ``trace=True`` -- use
    :func:`~repro.network.engine.make_engine` for graceful fallback.
    """

    SUPPORTED_PRIORITIES = frozenset({"fifo", "lifo", "longest", "ntg"})

    def __init__(self, network: Network, policy, trace: bool = False):
        if trace:
            raise ValidationError(
                "FastEngine does not record traces; use the reference engine"
            )
        self.network = network
        self.policy = policy
        self.trace = TraceRecorder(enabled=False)
        if isinstance(policy, PlanPolicy):
            self._mode = "plan"
            self._priority = None
        else:
            priority = getattr(policy, "fast_priority", None)
            if priority not in self.SUPPORTED_PRIORITIES:
                raise ValidationError(
                    f"policy {type(policy).__name__} is not supported by "
                    f"FastEngine (no fast_priority in "
                    f"{sorted(self.SUPPORTED_PRIORITIES)})"
                )
            self._mode = "greedy"
            self._priority = priority

    @classmethod
    def supports(cls, policy) -> bool:
        """True when ``policy`` can run on the fast engine."""
        return isinstance(policy, PlanPolicy) or (
            getattr(policy, "fast_priority", None) in cls.SUPPORTED_PRIORITIES
        )

    # -- plan tables -----------------------------------------------------

    def _compile_plans(self, rid):
        """Flatten the PlanPolicy action table into per-packet arrays.

        Returns ``(t0, length, offset, codes)``: packet ``i`` performs
        ``codes[offset[i] + (t - t0[i])]`` at time ``t`` when
        ``0 <= t - t0[i] < length[i]``; code ``axis < d`` forwards, code
        ``d`` stores.
        """
        d = self.network.d
        by_rid: dict = {}
        for (r, t), action in self.policy.actions.items():
            by_rid.setdefault(r, {})[t] = action
        n = len(rid)
        t0 = np.zeros(n, dtype=np.int64)
        length = np.zeros(n, dtype=np.int64)
        chunks = []
        offset = np.zeros(n, dtype=np.int64)
        pos = 0
        for i, r in enumerate(rid):
            acts = by_rid.get(int(r))
            if not acts:
                continue
            times = sorted(acts)
            t0[i] = times[0]
            length[i] = times[-1] - times[0] + 1
            codes = np.full(length[i], -1, dtype=np.int64)
            for t, action in acts.items():
                codes[t - times[0]] = d if action[0] == "S" else action[1]
            offset[i] = pos
            pos += len(codes)
            chunks.append(codes)
        flat = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        return t0, length, offset, flat

    # -- main loop -------------------------------------------------------

    def run(self, requests, horizon: int) -> SimulationResult:
        """Simulate ``requests`` for time steps ``0..horizon`` inclusive."""
        network = self.network
        B, c, d = network.buffer_size, network.capacity, network.d
        stats = NetworkStats()

        reqs = list(requests)
        for r in reqs:
            network.check_request(r)
        n = len(reqs)
        if n == 0:
            return SimulationResult(stats=stats, status={}, trace=self.trace,
                                    engine="fast")

        src = np.array([r.source for r in reqs], dtype=np.int64)
        dst = np.array([r.dest for r in reqs], dtype=np.int64)
        arrival = np.array([r.arrival for r in reqs], dtype=np.int64)
        deadline = np.array(
            [_NO_DEADLINE if r.deadline is None else r.deadline for r in reqs],
            dtype=np.int64,
        )
        rid = np.array([r.rid for r in reqs], dtype=np.int64)
        dims = np.array(network.dims, dtype=np.int64)
        # row-major flat node index, matching Network.node_index
        strides = np.ones(d, dtype=np.int64)
        for axis in range(d - 2, -1, -1):
            strides[axis] = strides[axis + 1] * dims[axis + 1]

        loc = src.copy()
        alive = np.zeros(n, dtype=bool)
        scode = np.zeros(n, dtype=np.int64)  # _PENDING
        delivered_t = np.full(n, -1, dtype=np.int64)

        if self._mode == "plan":
            plan_t0, plan_len, plan_off, plan_codes = self._compile_plans(rid)

        inj_order = np.argsort(arrival, kind="stable")
        ptr = 0
        n_alive = 0
        last_arrival = int(arrival.max())

        for t in range(0, horizon + 1):
            if n_alive == 0 and t > last_arrival:
                break
            stats.steps += 1

            # local inputs revealed at time t
            while ptr < n and arrival[inj_order[ptr]] == t:
                i = inj_order[ptr]
                alive[i] = True
                n_alive += 1
                ptr += 1

            act = np.flatnonzero(alive)
            if act.size == 0:
                continue

            # deliveries first (Section 2.1)
            at_dest = (loc[act] == dst[act]).all(axis=1)
            done = act[at_dest]
            if done.size:
                on_time = t <= deadline[done]
                scode[done] = np.where(on_time, _DELIVERED, _LATE)
                delivered_t[done] = t
                n_on = int(on_time.sum())
                stats.delivered += n_on
                stats.late += done.size - n_on
                alive[done] = False
                n_alive -= done.size
            rem = act[~at_dest]
            if rem.size == 0:
                continue

            node_id = loc[rem] @ strides
            if self._mode == "greedy":
                fwd_mask, fwd_axis, store_mask = self._decide_greedy(
                    rem, node_id, loc, dst, arrival, rid, stats, B, c, d
                )
            else:
                fwd_mask, fwd_axis, store_mask = self._decide_plan(
                    rem, node_id, loc, t, plan_t0, plan_len, plan_off,
                    plan_codes, dims, stats, B, c, d,
                )

            fwd = rem[fwd_mask]
            if fwd.size:
                loc[fwd, fwd_axis] += 1
                scode[fwd] = _INJECTED
                stats.forwards += fwd.size
            stored = rem[store_mask]
            if stored.size:
                scode[stored] = _INJECTED
                stats.stores += stored.size
            dropped = rem[~fwd_mask & ~store_mask]
            if dropped.size:
                fresh = arrival[dropped] == t  # rejected at injection
                scode[dropped] = np.where(fresh, _REJECTED, _PREEMPTED)
                n_fresh = int(fresh.sum())
                stats.rejected += n_fresh
                stats.preempted += dropped.size - n_fresh
                alive[dropped] = False
                n_alive -= dropped.size

        # anything still pending after the horizon was never handled
        pending = scode == _PENDING
        stats.rejected += int(pending.sum())
        scode[pending] = _REJECTED
        in_flight = scode == _INJECTED
        stats.preempted += int(in_flight.sum())
        scode[in_flight] = _PREEMPTED

        status = {
            int(r): _CODE_TO_STATUS[int(code)] for r, code in zip(rid, scode)
        }
        for i in np.flatnonzero(delivered_t >= 0):
            stats.delivery_times[int(rid[i])] = int(delivered_t[i])
        return SimulationResult(stats=stats, status=status, trace=self.trace,
                                engine="fast")

    # -- per-step decision kernels ---------------------------------------

    def _decide_greedy(self, rem, node_id, loc, dst, arrival, rid, stats, B, c, d):
        """Vectorized greedy-family decision: per-(node, axis) top-``c``
        forwarded, per-node top-``B`` of the leftovers stored."""
        togo = dst[rem] - loc[rem]
        axis = np.argmax(togo > 0, axis=1)  # one-bend: first unfinished axis
        remaining = togo.sum(axis=1)
        keys = _priority_keys(self._priority, arrival[rem], rid[rem], remaining)

        gid = node_id * d + axis
        rank, counts = _grouped_rank(gid, keys)
        stats.max_link_load = max(
            stats.max_link_load, int(np.minimum(counts, c).max())
        )
        fwd_mask = rank < c

        store_mask = np.zeros(rem.size, dtype=bool)
        left = ~fwd_mask
        if left.any():
            lrank, lcounts = _grouped_rank(
                node_id[left], tuple(k[left] for k in keys)
            )
            stats.max_buffer_load = max(
                stats.max_buffer_load, int(np.minimum(lcounts, B).max())
            )
            store_mask[np.flatnonzero(left)[lrank < B]] = True
        return fwd_mask, axis[fwd_mask], store_mask

    def _decide_plan(self, rem, node_id, loc, t, plan_t0, plan_len, plan_off,
                     plan_codes, dims, stats, B, c, d):
        """Replay the per-packet action table, enforcing ``B``/``c``."""
        rel = t - plan_t0[rem]
        has = (rel >= 0) & (rel < plan_len[rem])
        code = np.full(rem.size, -1, dtype=np.int64)
        if has.any():
            code[has] = plan_codes[plan_off[rem[has]] + rel[has]]

        fwd_mask = (code >= 0) & (code < d)
        fwd_axis = code[fwd_mask]
        if fwd_mask.any():
            heads = loc[rem[fwd_mask], fwd_axis] + 1
            bad = heads >= dims[fwd_axis]
            if bad.any():
                i = np.flatnonzero(fwd_mask)[np.flatnonzero(bad)[0]]
                raise ValidationError(
                    f"node {tuple(loc[rem[i]])} has no outgoing axis {code[i]}"
                )
            gid = node_id[fwd_mask] * d + fwd_axis
            _, counts = np.unique(gid, return_counts=True)
            worst = int(counts.max())
            if worst > c:
                raise CapacityError(f"plan forwards {worst} > c={c} on a link")
            stats.max_link_load = max(stats.max_link_load, worst)

        store_mask = code == d
        if store_mask.any():
            _, counts = np.unique(node_id[store_mask], return_counts=True)
            worst = int(counts.max())
            if worst > B:
                raise CapacityError(f"plan stores {worst} > B={B} at a node")
            stats.max_buffer_load = max(stats.max_buffer_load, worst)
        return fwd_mask, fwd_axis, store_mask
