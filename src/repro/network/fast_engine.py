"""Array-backed fast engine: vectorized Model 1 semantics.

:class:`FastEngine` replays the exact step dynamics of
:class:`~repro.network.simulator.Simulator` (Section 2.1) but packs all
packet state into numpy arrays -- location, axis-to-go, arrival, deadline
-- and resolves each time step with grouped array operations instead of
per-packet Python dicts.  One step costs a handful of ``lexsort``/scatter
passes over the *live* packets, so large grid workloads run one to two
orders of magnitude faster than the reference engine.

Decisions come from the vectorized decision ABI of
:mod:`repro.network.engine`: once per step the engine builds a
:class:`~repro.network.engine.StepView` and asks the policy for a
:class:`~repro.network.engine.VectorDecision`.  The engine then enforces
``B``/``c`` (:class:`~repro.util.errors.CapacityError` on violation, like
the reference validator) and accounts the load counters, so policies only
choose packets.  Every policy runs:

* native :class:`~repro.network.engine.VectorPolicy` implementations
  (anything with ``decide_vector``) -- called directly;
* the greedy family -- any policy exposing a ``fast_priority`` attribute
  naming one of the built-in priority orders (``fifo``, ``lifo``,
  ``longest``, ``ntg``) runs on :class:`GreedyVectorPolicy`;
* :class:`~repro.network.simulator.PlanPolicy` replay -- the per-packet
  action table is compiled into a vector policy;
* any other scalar :class:`~repro.network.simulator.Policy` -- lifted by
  :class:`BatchedPolicyAdapter`, which groups the step view per node and
  makes one scalar ``decide`` call per node-step (not per packet).

Tracing still needs the per-packet hooks of the reference engine;
:func:`~repro.network.engine.make_engine` falls back automatically.  Both
engines emit the same :class:`~repro.network.simulator.SimulationResult`:
identical ``status`` maps and identical
:class:`~repro.network.stats.NetworkStats` counters.  The built-in
priority orders are total (unique request id as final tie-break), so
parity is exact, not just statistical; custom policies keep that parity
exactly when their decisions are order-insensitive functions of the
candidate set (see the ABI contract in :mod:`repro.network.engine`).
"""

from __future__ import annotations

import numpy as np

from repro.network import kernel
from repro.network.engine import NO_DEADLINE, StepView, VectorDecision
from repro.network.packet import DeliveryStatus, Packet
from repro.network.simulator import PlanPolicy, Policy, SimulationResult
from repro.network.stats import NetworkStats
from repro.network.topology import Network
from repro.network.trace import TraceRecorder
from repro.util.errors import CapacityError, ValidationError

# integer status codes used inside the array loop
_PENDING, _REJECTED, _INJECTED, _PREEMPTED, _DELIVERED, _LATE = range(6)

_CODE_TO_STATUS = {
    _PENDING: DeliveryStatus.PENDING,
    _REJECTED: DeliveryStatus.REJECTED,
    _INJECTED: DeliveryStatus.INJECTED,
    _PREEMPTED: DeliveryStatus.PREEMPTED,
    _DELIVERED: DeliveryStatus.DELIVERED,
    _LATE: DeliveryStatus.LATE,
}

#: encodes ``deadline = infinity`` (re-exported; defined on the ABI module)
_NO_DEADLINE = NO_DEADLINE


def _priority_keys(name: str, arrival, rid, remaining):
    """Sort keys (most significant first) matching the reference policies'
    Python tuples; every order ends in the unique ``rid`` so it is total."""
    if name == "fifo":
        return (arrival, rid)
    if name == "lifo":
        return (-arrival, -rid)
    if name == "longest":
        return (-remaining, arrival, rid)
    if name == "ntg":
        return (remaining, arrival, rid)
    raise ValidationError(f"unknown fast priority {name!r}")


def _request_arrays(network, reqs):
    """``(src, dst, arrival, deadline, rid)`` int64 arrays for ``reqs``
    (validated against ``network``) -- the shared packet-state setup of
    the fast engines.

    Validation is vectorized: one bounds check over the stacked
    coordinate arrays instead of a per-request Python loop (the loop
    dominated per-scenario setup in sweep-shaped batches).  On failure
    the first offending request is re-checked through
    ``network.check_request`` so the error is byte-identical to the
    scalar path's.
    """
    if not len(reqs):
        empty = np.array([], dtype=np.int64)
        return empty, empty, empty, empty.copy(), empty.copy()
    try:
        src = np.array([r.source for r in reqs], dtype=np.int64)
        dst = np.array([r.dest for r in reqs], dtype=np.int64)
    except ValueError:  # ragged coordinates: mixed dimensionality
        src = dst = None
    dims = np.asarray(network.dims, dtype=np.int64)
    if (src is None or src.ndim != 2 or src.shape[1] != network.d):
        for r in reqs:
            network.check_request(r)
        raise AssertionError("check_request accepted a ragged batch")
    ok = ((src >= 0) & (src < dims) & (dst >= 0) & (dst < dims)).all(axis=1)
    arrival = np.array([r.arrival for r in reqs], dtype=np.int64)
    deadline = np.array(
        [_NO_DEADLINE if r.deadline is None else r.deadline for r in reqs],
        dtype=np.int64,
    )
    # reachability (non-wrapping axes must not decrease) and deadline
    # feasibility, matching Network.check_request row for row
    wrap = np.asarray(network.wrap, dtype=bool)
    if not wrap.all():
        ok &= (src[:, ~wrap] <= dst[:, ~wrap]).all(axis=1)
    distance = np.where(wrap, (dst - src) % dims, dst - src).sum(axis=1)
    ok &= deadline >= arrival + distance
    if not ok.all():
        network.check_request(reqs[int(np.flatnonzero(~ok)[0])])
        raise AssertionError("check_request accepted an invalid request")
    rid = np.array([r.rid for r in reqs], dtype=np.int64)
    return src, dst, arrival, deadline, rid


def _finalize_result(stats, scode, rid, delivered_t, trace, engine="fast"):
    """Resolve end-of-horizon statuses and build the result record.

    Anything still pending was never handled (rejected); anything still
    in flight never reached its destination (preempted) -- the shared
    epilogue of the fast engines, mirroring the reference loops.
    ``engine`` labels the result (the stacked batch engine reuses this
    epilogue per scenario slice).
    """
    pending = scode == _PENDING
    stats.rejected += int(pending.sum())
    scode[pending] = _REJECTED
    in_flight = scode == _INJECTED
    stats.preempted += int(in_flight.sum())
    scode[in_flight] = _PREEMPTED

    status = {
        int(r): _CODE_TO_STATUS[int(code)] for r, code in zip(rid, scode)
    }
    for i in np.flatnonzero(delivered_t >= 0):
        stats.delivery_times[int(rid[i])] = int(delivered_t[i])
    return SimulationResult(stats=stats, status=status, trace=trace,
                            engine=engine)


def greedy_masks(view: StepView, keys) -> VectorDecision:
    """Greedy contention resolution under a total order: the decision of
    every greedy-family policy, parameterized by its key tuple.

    Per (node, axis) the top ``c`` packets under ``keys`` (most
    significant first; end in ``view.rid`` to make the order total) are
    forwarded -- 1-bend routing, the first unfinished axis, with ``c``
    read per edge so ``link_caps`` hotspots admit fewer -- and per
    node the top ``B`` leftovers are stored.  Public on purpose: custom
    vector policies (see :mod:`repro.baselines.edd`) build their key
    arrays and delegate the subtle mask construction here, so the
    bit-identity-critical logic exists once.  The ranking and admission
    themselves run in the selected step kernel
    (:func:`repro.network.kernel.admit` -- compiled under numba, plain
    numpy otherwise), which is how both the fast and the stacked batch
    engine share one native hot loop.

    ``view.network`` may be a per-scenario :class:`Network` (scalar
    ``B``/``c``) or a stacked batch facade whose ``buffer_size`` and
    ``capacity`` are *per-row* arrays -- the ranking is group-local
    either way, so the same masks come out row for row.
    """
    togo = view.network.togo_array(view.loc, view.dst)
    axis = np.argmax(togo > 0, axis=1)  # one-bend: first unfinished axis
    fwd_mask, store_mask = kernel.admit(
        view.node_id, axis, view.network.d, keys,
        view.network.buffer_size,
        view.network.edge_capacity(view.node_id, axis))
    return VectorDecision(forward=fwd_mask, axis=axis, store=store_mask)


class GreedyVectorPolicy:
    """The built-in greedy family on the decision ABI.

    Bit-identical to :class:`~repro.baselines.greedy.GreedyPolicy` /
    :class:`~repro.baselines.nearest_to_go.NearestToGoPolicy` because the
    key tuples match and end in the unique ``rid``.
    """

    def __init__(self, priority: str):
        _priority_keys(priority, np.empty(0, np.int64),
                       np.empty(0, np.int64), np.empty(0, np.int64))
        self.priority = priority

    def decide_vector(self, view: StepView) -> VectorDecision:
        keys = _priority_keys(self.priority, view.arrival, view.rid,
                              view.remaining())
        return greedy_masks(view, keys)


class _PlanVectorPolicy:
    """Plan replay on the decision ABI: per-packet action tables.

    Compiled once per run from a :class:`PlanPolicy`'s ``(rid, t)`` action
    map: packet at request-position ``i`` performs
    ``codes[offset[i] + (t - t0[i])]`` at time ``t`` when
    ``0 <= t - t0[i] < length[i]``; code ``axis < d`` forwards, code ``d``
    stores, ``-1`` (or no table entry) deletes.
    """

    def __init__(self, policy: PlanPolicy, d: int, rid):
        by_rid: dict = {}
        for (r, t), action in policy.actions.items():
            by_rid.setdefault(r, {})[t] = action
        n = len(rid)
        self._d = d
        self._t0 = np.zeros(n, dtype=np.int64)
        self._len = np.zeros(n, dtype=np.int64)
        self._off = np.zeros(n, dtype=np.int64)
        chunks = []
        pos = 0
        for i, r in enumerate(rid):
            acts = by_rid.get(int(r))
            if not acts:
                continue
            times = sorted(acts)
            self._t0[i] = times[0]
            self._len[i] = times[-1] - times[0] + 1
            codes = np.full(self._len[i], -1, dtype=np.int64)
            for t, action in acts.items():
                codes[t - times[0]] = d if action[0] == "S" else action[1]
            self._off[i] = pos
            pos += len(codes)
            chunks.append(codes)
        self._codes = (np.concatenate(chunks) if chunks
                       else np.empty(0, dtype=np.int64))

    def decide_vector(self, view: StepView) -> VectorDecision:
        i = view.index
        rel = view.t - self._t0[i]
        has = (rel >= 0) & (rel < self._len[i])
        code = np.full(view.size, -1, dtype=np.int64)
        if has.any():
            code[has] = self._codes[self._off[i[has]] + rel[has]]
        fwd_mask = (code >= 0) & (code < self._d)
        store_mask = code == self._d
        return VectorDecision(forward=fwd_mask, axis=np.maximum(code, 0),
                              store=store_mask)


class BatchedPolicyAdapter:
    """Lift any scalar :class:`Policy` onto the decision ABI.

    ``decide_vector`` groups the step view per node, re-materializes the
    candidate :class:`~repro.network.packet.Packet` records (rid-sorted,
    with exact ``location``/``hops``/``injected_at``), and makes one
    scalar ``decide`` call per node-step -- the per-packet Python loop of
    the reference engine collapses to a per-node one.  Decisions are
    validated like the reference validator (foreign packets, double
    scheduling, axis bounds, ``B``/``c``) before being scattered back
    into masks.

    Bit-identity with the reference engine holds for policies whose
    decisions are order-insensitive in the candidate list and do not key
    state on packet object identity (see :mod:`repro.network.engine`).
    """

    def __init__(self, policy: Policy, network: Network):
        self.policy = policy
        self.network = network

    def on_step_begin(self, t: int) -> None:
        self.policy.on_step_begin(t)

    def decide_vector(self, view: StepView) -> VectorDecision:
        network = self.network
        B, d = network.buffer_size, network.d
        fwd_mask = np.zeros(view.size, dtype=bool)
        axis_arr = np.zeros(view.size, dtype=np.int64)
        store_mask = np.zeros(view.size, dtype=bool)
        hops = view.hops()

        order = np.lexsort((view.rid, view.node_id))
        gid = view.node_id[order]
        starts = np.flatnonzero(np.r_[True, gid[1:] != gid[:-1]])
        bounds = np.append(starts, len(order))
        for s, e in zip(bounds[:-1], bounds[1:]):
            rows = order[s:e]
            node = tuple(int(x) for x in view.loc[rows[0]])
            row_of: dict = {}
            candidates = []
            for r in rows:
                pkt = Packet(request=view.requests[view.index[r]],
                             location=node, injected_at=int(view.arrival[r]),
                             hops=int(hops[r]))
                row_of[id(pkt)] = int(r)
                candidates.append(pkt)
            decision = self.policy.decide(node, view.t, candidates, network)

            seen: set = set()
            for axis, pkts in decision.forward.items():
                c = network.capacity_of(node, axis) if 0 <= axis < d \
                    else network.capacity
                if len(pkts) > c:
                    raise CapacityError(
                        f"node {node} forwards {len(pkts)} > c={c} on "
                        f"axis {axis}"
                    )
                head_ok = 0 <= axis < d and network.has_edge(node, axis)
                if pkts and not head_ok:
                    raise ValidationError(
                        f"node {node} has no outgoing axis {axis}")
                for pkt in pkts:
                    row = row_of.get(id(pkt))
                    if row is None:
                        raise ValidationError(
                            f"decision forwards foreign packet {pkt.rid}")
                    if id(pkt) in seen:
                        raise ValidationError(
                            f"packet {pkt.rid} scheduled twice")
                    seen.add(id(pkt))
                    fwd_mask[row] = True
                    axis_arr[row] = axis
            if len(decision.store) > B:
                raise CapacityError(
                    f"node {node} stores {len(decision.store)} > B={B}")
            for pkt in decision.store:
                row = row_of.get(id(pkt))
                if row is None:
                    raise ValidationError(
                        f"decision stores foreign packet {pkt.rid}")
                if id(pkt) in seen:
                    raise ValidationError(f"packet {pkt.rid} scheduled twice")
                seen.add(id(pkt))
                store_mask[row] = True
        return VectorDecision(forward=fwd_mask, axis=axis_arr,
                              store=store_mask)


class FastEngine:
    """Vectorized drop-in for :class:`~repro.network.simulator.Simulator`.

    Construction raises :class:`~repro.util.errors.ValidationError` for
    unsupported policies or ``trace=True`` -- use
    :func:`~repro.network.engine.make_engine` for graceful fallback.
    """

    SUPPORTED_PRIORITIES = frozenset({"fifo", "lifo", "longest", "ntg"})

    def __init__(self, network: Network, policy, trace: bool = False):
        if trace:
            raise ValidationError(
                "FastEngine does not record traces; use the reference engine"
            )
        self.network = network
        self.policy = policy
        self.trace = TraceRecorder(enabled=False)
        self._vpolicy = None
        if isinstance(policy, PlanPolicy):
            self._mode = "plan"  # compiled per run (needs the rid order)
        elif callable(getattr(policy, "decide_vector", None)):
            self._mode = "vector"
            self._vpolicy = policy
        elif getattr(policy, "fast_priority", None) in \
                self.SUPPORTED_PRIORITIES:
            self._mode = "vector"
            self._vpolicy = GreedyVectorPolicy(policy.fast_priority)
        elif callable(getattr(policy, "decide", None)):
            self._mode = "vector"
            self._vpolicy = BatchedPolicyAdapter(policy, network)
        else:
            raise ValidationError(
                f"policy {type(policy).__name__} is not supported by "
                f"FastEngine (needs decide_vector, a fast_priority in "
                f"{sorted(self.SUPPORTED_PRIORITIES)}, a scalar decide, "
                f"or a PlanPolicy)"
            )

    @classmethod
    def supports(cls, policy) -> bool:
        """True when ``policy`` can run on the fast engine: plan replay,
        a native vector policy, a named greedy priority, or any scalar
        policy (lifted by the batched adapter).

        A policy that knowingly violates the ABI's order-insensitivity
        contract can set ``vectorize = False`` to keep the reference
        path even under a global ``REPRO_ENGINE=fast``.
        """
        if getattr(policy, "vectorize", True) is False:
            return False
        return (
            isinstance(policy, PlanPolicy)
            or callable(getattr(policy, "decide_vector", None))
            or getattr(policy, "fast_priority", None)
            in cls.SUPPORTED_PRIORITIES
            or callable(getattr(policy, "decide", None))
        )

    # -- main loop -------------------------------------------------------

    def run(self, requests, horizon: int) -> SimulationResult:
        """Simulate ``requests`` for time steps ``0..horizon`` inclusive."""
        network = self.network
        B, c, d = network.buffer_size, network.capacity, network.d
        stats = NetworkStats()

        reqs = tuple(requests)
        n = len(reqs)
        src, dst, arrival, deadline, rid = _request_arrays(network, reqs)
        if n == 0:
            return SimulationResult(stats=stats, status={}, trace=self.trace,
                                    engine="fast")

        dims = np.array(network.dims, dtype=np.int64)
        # row-major flat node index, matching Network.node_index
        strides = np.ones(d, dtype=np.int64)
        for axis in range(d - 2, -1, -1):
            strides[axis] = strides[axis + 1] * dims[axis + 1]

        loc = src.copy()
        alive = np.zeros(n, dtype=bool)
        scode = np.zeros(n, dtype=np.int64)  # _PENDING
        delivered_t = np.full(n, -1, dtype=np.int64)

        vpolicy = self._vpolicy
        if self._mode == "plan":
            vpolicy = _PlanVectorPolicy(self.policy, d, rid)
        step_begin = getattr(vpolicy, "on_step_begin", None)

        inj_order = kernel.injection_order(arrival)
        ptr = 0
        n_alive = 0
        last_arrival = int(arrival.max())

        for t in range(0, horizon + 1):
            if n_alive == 0 and t > last_arrival:
                break
            stats.steps += 1
            if step_begin is not None:
                step_begin(t)

            # local inputs revealed at time t
            while ptr < n and arrival[inj_order[ptr]] == t:
                i = inj_order[ptr]
                alive[i] = True
                n_alive += 1
                ptr += 1

            act = np.flatnonzero(alive)
            if act.size == 0:
                continue

            # deliveries first (Section 2.1)
            at_dest = (loc[act] == dst[act]).all(axis=1)
            done = act[at_dest]
            if done.size:
                on_time = t <= deadline[done]
                scode[done] = np.where(on_time, _DELIVERED, _LATE)
                delivered_t[done] = t
                n_on = int(on_time.sum())
                stats.delivered += n_on
                stats.late += done.size - n_on
                alive[done] = False
                n_alive -= done.size
            rem = act[~at_dest]
            if rem.size == 0:
                continue

            node_id = loc[rem] @ strides
            view = StepView(
                t=t, network=network, requests=reqs, index=rem,
                node_id=node_id, loc=loc[rem], src=src[rem], dst=dst[rem],
                arrival=arrival[rem], deadline=deadline[rem], rid=rid[rem],
            )
            decision = vpolicy.decide_vector(view)
            fwd_mask, fwd_axis, store_mask = self._check_decision(
                decision, view, loc, dims, stats, B, c, d)

            fwd = rem[fwd_mask]
            if fwd.size:
                loc[fwd, fwd_axis] += 1
                if network.any_wrap:
                    # identity on non-wrapping axes (heads were validated)
                    loc[fwd, fwd_axis] %= dims[fwd_axis]
                scode[fwd] = _INJECTED
                stats.forwards += fwd.size
            stored = rem[store_mask]
            if stored.size:
                scode[stored] = _INJECTED
                stats.stores += stored.size
            dropped = rem[~fwd_mask & ~store_mask]
            if dropped.size:
                fresh = arrival[dropped] == t  # rejected at injection
                scode[dropped] = np.where(fresh, _REJECTED, _PREEMPTED)
                n_fresh = int(fresh.sum())
                stats.rejected += n_fresh
                stats.preempted += dropped.size - n_fresh
                alive[dropped] = False
                n_alive -= dropped.size

        return _finalize_result(stats, scode, rid, delivered_t, self.trace)

    # -- decision enforcement ---------------------------------------------

    def _check_decision(self, decision, view, loc, dims, stats, B, c, d):
        """Validate a :class:`VectorDecision` and account the load stats.

        The engine, not the policy, enforces the model: overlapping
        masks, unknown axes and off-grid forwards raise
        :class:`~repro.util.errors.ValidationError`; link loads above
        ``c`` and buffer loads above ``B`` raise
        :class:`~repro.util.errors.CapacityError` -- the same contract
        the reference engine's validator applies to scalar decisions.
        """
        fwd_mask = np.asarray(decision.forward, dtype=bool)
        store_mask = np.asarray(decision.store, dtype=bool)
        axis_arr = np.asarray(decision.axis, dtype=np.int64)
        k = view.size
        if fwd_mask.shape != (k,) or store_mask.shape != (k,) \
                or axis_arr.shape != (k,):
            raise ValidationError(
                f"vector decision shapes {fwd_mask.shape}/{axis_arr.shape}/"
                f"{store_mask.shape} do not match the step view ({k} rows)"
            )
        both = fwd_mask & store_mask
        if both.any():
            i = int(np.flatnonzero(both)[0])
            raise ValidationError(
                f"packet {int(view.rid[i])} scheduled twice")

        fwd_axis = axis_arr[fwd_mask]
        if fwd_axis.size:
            if ((fwd_axis < 0) | (fwd_axis >= d)).any():
                raise ValidationError(
                    f"vector decision names an axis outside 0..{d - 1}")
            rows = view.index[fwd_mask]
            heads = loc[rows, fwd_axis] + 1
            # an edge exists when the head stays on-grid, or the axis
            # wraps with more than one node
            wrap = np.asarray(self.network.wrap, dtype=bool)
            bad = (heads >= dims[fwd_axis]) & \
                (~wrap[fwd_axis] | (dims[fwd_axis] == 1))
            if bad.any():
                i = int(np.flatnonzero(bad)[0])
                raise ValidationError(
                    f"node {tuple(loc[rows[i]])} has no outgoing axis "
                    f"{int(fwd_axis[i])}"
                )
            gid = view.node_id[fwd_mask] * d + fwd_axis
            uniq, counts = np.unique(gid, return_counts=True)
            worst = int(counts.max())
            cap_flat = self.network.capacity_array()
            if cap_flat is not None:
                over = counts > cap_flat[uniq]
                if over.any():
                    i = int(np.flatnonzero(over)[0])
                    raise CapacityError(
                        f"decision forwards {int(counts[i])} > "
                        f"c={int(cap_flat[uniq[i]])} on a link")
            elif worst > c:
                raise CapacityError(f"decision forwards {worst} > c={c} "
                                    f"on a link")
            stats.max_link_load = max(stats.max_link_load, worst)

        if store_mask.any():
            _, counts = np.unique(view.node_id[store_mask],
                                  return_counts=True)
            worst = int(counts.max())
            if worst > B:
                raise CapacityError(f"decision stores {worst} > B={B} "
                                    f"at a node")
            stats.max_buffer_load = max(stats.max_buffer_load, worst)
        return fwd_mask, fwd_axis, store_mask
