"""Uni-directional topology family: lines, grids, rings, and tori.

A d-dimensional uni-directional grid over ``dims = (l_1, ..., l_d)`` has
vertex set ``[0, l_1) x ... x [0, l_d)`` and, for each axis ``i``, edges
``x -> x + e_i`` whenever that stays inside the grid (Section 2.2 of the
paper).  Axes may additionally *wrap*: a wrapping axis also has the seam
edge ``(..., l_i - 1, ...) -> (..., 0, ...)``, which turns a line into a
ring and a grid into a torus.  Distances along a wrapping axis are taken
mod ``l_i`` (always forward -- edges stay uni-directional).

Capacities default to the paper's uniform model -- every edge carries
``c`` packets per step and every node buffers ``B`` -- but individual
links may be overridden through ``link_caps``, a map from ``(tail
node, axis)`` to a per-edge capacity.  This models hotspot links without
giving up the closed-form geometry.  Algorithms whose guarantees need
the pure grid (the space-time-graph planners) must gate on
:func:`grid_geometry_reason` and plan against :attr:`Network.min_capacity`,
the binding constraint on heterogeneous networks.

Coordinates are 0-based (the paper uses 1-based; the shift is immaterial).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.network.packet import Node
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Edge:
    """A directed grid edge ``tail -> tail + e_axis`` (mod the side length
    when the axis wraps, in which case ``wrap_len`` holds that length)."""

    tail: Node
    axis: int
    wrap_len: int | None = None

    @property
    def head(self) -> Node:
        head = list(self.tail)
        head[self.axis] += 1
        if self.wrap_len is not None:
            head[self.axis] %= self.wrap_len
        return tuple(head)


def _normalize_link_caps(link_caps, d: int):
    """Normalize ``link_caps`` into ``{(tail, axis): cap}``.

    Accepts a mapping keyed by ``(tail, axis)`` or an iterable of
    ``(tail, axis, cap)`` triples; tails are coerced to int tuples.
    """
    if not link_caps:
        return {}
    if hasattr(link_caps, "items"):
        triples = [(tail, axis, cap) for (tail, axis), cap in link_caps.items()]
    else:
        triples = list(link_caps)
    out = {}
    for entry in triples:
        try:
            tail, axis, cap = entry
            tail = tuple(int(x) for x in tail)
            axis = int(axis)
            cap = int(cap)
        except (TypeError, ValueError):
            raise ValidationError(
                f"link_caps entries must be (tail, axis, cap) triples, got {entry!r}"
            ) from None
        if len(tail) != d:
            raise ValidationError(
                f"link_caps tail {tail} does not match grid dimension {d}"
            )
        out[(tail, axis)] = cap
    return out


class Network:
    """A uni-directional grid network, optionally with wraparound axes
    and per-edge capacity overrides.

    Parameters
    ----------
    dims:
        Side lengths ``(l_1, ..., l_d)``; the number of nodes is
        ``n = l_1 * ... * l_d``.
    buffer_size:
        Buffer size ``B >= 0`` of every node.
    capacity:
        Default link capacity ``c >= 1`` of every edge.
    wrap:
        Per-axis wraparound flags (a single bool applies to all axes).
        A wrapping axis adds the seam edge ``l_i - 1 -> 0``.
    link_caps:
        Optional per-edge capacity overrides: a ``{(tail, axis): cap}``
        mapping or an iterable of ``(tail, axis, cap)`` triples.  Edges
        not listed keep the scalar ``capacity``.
    """

    def __init__(self, dims, buffer_size: int, capacity: int, wrap=None, link_caps=None):
        dims = tuple(int(l) for l in dims)
        if not dims or any(l < 1 for l in dims):
            raise ValidationError(f"dims must be positive, got {dims}")
        if buffer_size < 0:
            raise ValidationError(f"buffer size B must be >= 0, got {buffer_size}")
        if capacity < 1:
            raise ValidationError(f"link capacity c must be >= 1, got {capacity}")
        self.dims = dims
        self.buffer_size = int(buffer_size)
        self.capacity = int(capacity)
        if wrap is None:
            wrap = (False,) * len(dims)
        elif isinstance(wrap, bool):
            wrap = (wrap,) * len(dims)
        else:
            wrap = tuple(bool(w) for w in wrap)
        if len(wrap) != len(dims):
            raise ValidationError(
                f"wrap flags {wrap} do not match grid dimension {len(dims)}"
            )
        self.wrap = wrap
        self.link_caps = _normalize_link_caps(link_caps, len(dims))
        for (tail, axis), cap in self.link_caps.items():
            if not (0 <= axis < self.d):
                raise ValidationError(f"link_caps axis {axis} outside 0..{self.d - 1}")
            self.check_node(tail)
            if not self.has_edge(tail, axis):
                raise ValidationError(f"link_caps names a non-edge: {tail} axis {axis}")
            if cap < 1:
                raise ValidationError(
                    f"link capacity c must be >= 1, got {cap} for edge {tail} axis {axis}"
                )
        self._dims_arr = np.asarray(self.dims, dtype=np.int64)
        self._wrap_arr = np.asarray(self.wrap, dtype=bool)
        self._any_wrap = bool(self._wrap_arr.any())
        self._cap_flat = None  # lazily built dense (n * d,) capacity table

    # -- basic shape ----------------------------------------------------

    @property
    def d(self) -> int:
        """Grid dimension."""
        return len(self.dims)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return math.prod(self.dims)

    @property
    def any_wrap(self) -> bool:
        """Whether any axis wraps (ring / torus geometry)."""
        return self._any_wrap

    @property
    def diameter(self) -> int:
        """Length of the longest shortest path, ``sum(l_i - 1)``.

        The formula also holds on wrapping axes: the farthest forward
        target is one step behind, ``l_i - 1`` hops away.
        """
        return sum(l - 1 for l in self.dims)

    def nodes(self):
        """Iterate over all nodes in lexicographic order."""
        return itertools.product(*(range(l) for l in self.dims))

    def has_edge(self, node: Node, axis: int) -> bool:
        """Whether the edge ``node -> node + e_axis`` exists."""
        l = self.dims[axis]
        return node[axis] + 1 < l or (self.wrap[axis] and l > 1)

    def edges(self):
        """Iterate over all directed edges."""
        for node in self.nodes():
            for axis in range(self.d):
                if self.has_edge(node, axis):
                    wrap_len = self.dims[axis] if self.wrap[axis] else None
                    yield Edge(node, axis, wrap_len)

    def num_edges(self) -> int:
        total = 0
        for axis, l in enumerate(self.dims):
            per_axis = l if (self.wrap[axis] and l > 1) else l - 1
            total += per_axis * (self.n // l)
        return total

    # -- membership / geometry ------------------------------------------

    def contains(self, node: Node) -> bool:
        return len(node) == self.d and all(0 <= x < l for x, l in zip(node, self.dims))

    def check_node(self, node: Node) -> None:
        if not self.contains(node):
            raise ValidationError(f"node {node} outside grid {self.dims}")

    def dist(self, a: Node, b: Node) -> int:
        """Directed hop distance ``a -> b``.

        On a wrapping axis the distance is ``(b_i - a_i) mod l_i``; on a
        non-wrapping axis it is ``b_i - a_i`` and requires ``a_i <= b_i``.
        """
        total = 0
        for x, y, l, w in zip(a, b, self.dims, self.wrap):
            if w:
                total += (y - x) % l
            else:
                if x > y:
                    raise ValidationError(
                        f"no directed path {a} -> {b} in a uni-directional grid"
                    )
                total += y - x
        return total

    def out_neighbors(self, node: Node):
        """Successors of ``node`` (at most ``d`` of them)."""
        for axis in range(self.d):
            if self.has_edge(node, axis):
                head = list(node)
                head[axis] = (head[axis] + 1) % self.dims[axis]
                yield axis, tuple(head)

    # -- vectorized geometry (shared by every engine) ---------------------

    def togo_array(self, loc, dst):
        """Per-axis remaining hops ``loc -> dst`` as an ``(k, d)`` array.

        This is the one vectorized distance used by the fast engines and
        the decision ABI; it matches :meth:`dist` axis by axis.
        """
        togo = dst - loc
        if self._any_wrap:
            togo = np.where(self._wrap_arr, togo % self._dims_arr, togo)
        return togo

    def hops_array(self, src, loc):
        """Per-axis hops travelled ``src -> loc`` as an ``(k, d)`` array.

        On wrapping axes this reconstructs travel mod ``l_i``, which is
        exact for 1-bend routes (per-axis travel is below ``l_i``).
        """
        hops = loc - src
        if self._any_wrap:
            hops = np.where(self._wrap_arr, hops % self._dims_arr, hops)
        return hops

    # -- capacities -------------------------------------------------------

    def capacity_of(self, node: Node, axis: int) -> int:
        """Capacity of the edge ``node -> node + e_axis``."""
        if not self.link_caps:
            return self.capacity
        return self.link_caps.get((tuple(node), axis), self.capacity)

    @property
    def min_capacity(self) -> int:
        """Minimum capacity over all edges -- the binding constraint for
        capability checks and planners on heterogeneous networks."""
        if not self.link_caps:
            return self.capacity
        caps = min(self.link_caps.values())
        if len(self.link_caps) >= self.num_edges():
            return caps
        return min(self.capacity, caps)

    def capacity_array(self):
        """Dense per-edge capacity table, flat-indexed by
        ``node_index(node) * d + axis`` (non-edges keep the scalar), or
        ``None`` when capacities are uniform."""
        if not self.link_caps:
            return None
        if self._cap_flat is None:
            flat = np.full(self.n * self.d, self.capacity, dtype=np.int64)
            for (tail, axis), cap in self.link_caps.items():
                flat[self.node_index(tail) * self.d + axis] = cap
            self._cap_flat = flat
        return self._cap_flat

    def edge_capacity(self, node_id, axis):
        """Vector form of :meth:`capacity_of` for the decision ABI:
        ``node_id`` and ``axis`` are arrays; returns the scalar ``c``
        when capacities are uniform, else a per-row int64 array."""
        flat = self.capacity_array()
        if flat is None:
            return self.capacity
        return flat[np.asarray(node_id) * self.d + np.asarray(axis)]

    # -- node indexing (flat ids for array-backed ledgers) ---------------

    def node_index(self, node: Node) -> int:
        """Flat row-major index of ``node``."""
        idx = 0
        for x, l in zip(node, self.dims):
            idx = idx * l + x
        return idx

    def node_from_index(self, idx: int) -> Node:
        coords = []
        for l in reversed(self.dims):
            coords.append(idx % l)
            idx //= l
        return tuple(reversed(coords))

    # -- request validation ----------------------------------------------

    def check_request(self, request) -> None:
        """Validate that ``request`` fits this network: endpoints on the
        grid, destination reachable, and deadline feasible."""
        if request.dim != self.d:
            raise ValidationError(
                f"request dimension {request.dim} does not match grid dimension {self.d}"
            )
        self.check_node(request.source)
        self.check_node(request.dest)
        distance = self.dist(request.source, request.dest)
        if request.deadline is not None and request.deadline < request.arrival + distance:
            raise ValidationError(
                f"infeasible deadline {request.deadline} for request "
                f"{request.source} -> {request.dest} arriving at {request.arrival} "
                f"(distance {distance})"
            )

    # -- paper parameters -------------------------------------------------

    def pmax(self) -> int:
        """The paper's maximum useful path length in the space-time graph.

        Section 3.6.1: for a line ``p_max = 2n(1 + n(B/c + 1))``; for a
        d-dimensional grid ``p_max = 2 diam(G) (1 + n(B/c + d))``.  Both are
        instances of ``(nu + 2) diam(G)`` from Lemma 2 (up to rounding).
        On heterogeneous networks the minimum capacity is the binding one.
        """
        n, B, c, d = self.n, self.buffer_size, self.min_capacity, self.d
        if d == 1:
            return math.ceil(2 * n * (1 + n * (B / c + 1)))
        return math.ceil(2 * self.diameter * (1 + n * (B / c + d)))

    def tile_side_k(self, pmax: int | None = None) -> int:
        """Tile side ``k = ceil(log2(1 + 3 p_max))`` (Section 5, Parameters)."""
        p = self.pmax() if pmax is None else pmax
        return max(1, math.ceil(math.log2(1 + 3 * p)))

    def __repr__(self) -> str:
        extra = ""
        if self._any_wrap:
            extra += f", wrap={self.wrap}"
        if self.link_caps:
            extra += f", link_caps={len(self.link_caps)} edges"
        return (
            f"{type(self).__name__}(dims={self.dims}, B={self.buffer_size}, "
            f"c={self.capacity}{extra})"
        )


def grid_geometry_reason(network: Network) -> str | None:
    """Capability gate for algorithms that assume pure grid geometry.

    The space-time-graph planners (and the Model 2 stack) encode the
    closed-form Manhattan metric; wraparound axes break their window
    constructions.  Returns a human-readable reason, or ``None`` when
    the network is a plain (non-wrapping) grid.
    """
    if network.any_wrap:
        return "requires grid geometry (no wraparound axes)"
    return None


class LineNetwork(Network):
    """Uni-directional line with ``n`` nodes ``0 -> 1 -> ... -> n-1``."""

    def __init__(self, n: int, buffer_size: int = 1, capacity: int = 1, link_caps=None):
        super().__init__((n,), buffer_size, capacity, link_caps=link_caps)

    @property
    def length(self) -> int:
        return self.dims[0]


class GridNetwork(Network):
    """Uni-directional d-dimensional grid (``d >= 2`` typical)."""

    def __init__(self, dims, buffer_size: int = 1, capacity: int = 1, link_caps=None):
        super().__init__(dims, buffer_size, capacity, link_caps=link_caps)
        if self.d < 1:
            raise ValidationError("grid needs at least one dimension")


class RingNetwork(Network):
    """Uni-directional ring: a line whose last node feeds node 0."""

    def __init__(self, n: int, buffer_size: int = 1, capacity: int = 1, link_caps=None):
        super().__init__((n,), buffer_size, capacity, wrap=True, link_caps=link_caps)

    @property
    def length(self) -> int:
        return self.dims[0]


class TorusNetwork(Network):
    """Uni-directional torus: a grid wrapping around every axis."""

    def __init__(self, dims, buffer_size: int = 1, capacity: int = 1, link_caps=None):
        super().__init__(dims, buffer_size, capacity, wrap=True, link_caps=link_caps)
