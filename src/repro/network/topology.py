"""Uni-directional line and grid topologies (Section 2.2 of the paper).

A d-dimensional uni-directional grid over ``dims = (l_1, ..., l_d)`` has
vertex set ``[0, l_1) x ... x [0, l_d)`` and, for each axis ``i``, edges
``x -> x + e_i`` whenever that stays inside the grid.  Every edge has
capacity ``c`` and every node a buffer of size ``B`` (uniform, Section 2.2).

Coordinates are 0-based (the paper uses 1-based; the shift is immaterial).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.network.packet import Node
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Edge:
    """A directed grid edge ``tail -> tail + e_axis``."""

    tail: Node
    axis: int

    @property
    def head(self) -> Node:
        head = list(self.tail)
        head[self.axis] += 1
        return tuple(head)


class Network:
    """A uni-directional grid network with uniform capacities.

    Parameters
    ----------
    dims:
        Side lengths ``(l_1, ..., l_d)``; the number of nodes is
        ``n = l_1 * ... * l_d``.
    buffer_size:
        Buffer size ``B >= 0`` of every node.
    capacity:
        Link capacity ``c >= 1`` of every edge.
    """

    def __init__(self, dims, buffer_size: int, capacity: int):
        dims = tuple(int(l) for l in dims)
        if not dims or any(l < 1 for l in dims):
            raise ValidationError(f"dims must be positive, got {dims}")
        if buffer_size < 0:
            raise ValidationError(f"buffer size B must be >= 0, got {buffer_size}")
        if capacity < 1:
            raise ValidationError(f"link capacity c must be >= 1, got {capacity}")
        self.dims = dims
        self.buffer_size = int(buffer_size)
        self.capacity = int(capacity)

    # -- basic shape ----------------------------------------------------

    @property
    def d(self) -> int:
        """Grid dimension."""
        return len(self.dims)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return math.prod(self.dims)

    @property
    def diameter(self) -> int:
        """Length of the longest shortest path, ``sum(l_i - 1)``."""
        return sum(l - 1 for l in self.dims)

    def nodes(self):
        """Iterate over all nodes in lexicographic order."""
        return itertools.product(*(range(l) for l in self.dims))

    def edges(self):
        """Iterate over all directed edges."""
        for node in self.nodes():
            for axis in range(self.d):
                if node[axis] + 1 < self.dims[axis]:
                    yield Edge(node, axis)

    def num_edges(self) -> int:
        return sum(
            (self.dims[axis] - 1) * (self.n // self.dims[axis]) for axis in range(self.d)
        )

    # -- membership / geometry ------------------------------------------

    def contains(self, node: Node) -> bool:
        return len(node) == self.d and all(0 <= x < l for x, l in zip(node, self.dims))

    def check_node(self, node: Node) -> None:
        if not self.contains(node):
            raise ValidationError(f"node {node} outside grid {self.dims}")

    def dist(self, a: Node, b: Node) -> int:
        """Directed hop distance ``a -> b``; requires ``a <= b`` componentwise."""
        if any(x > y for x, y in zip(a, b)):
            raise ValidationError(f"no directed path {a} -> {b} in a uni-directional grid")
        return sum(y - x for x, y in zip(a, b))

    def out_neighbors(self, node: Node):
        """Successors of ``node`` (at most ``d`` of them)."""
        for axis in range(self.d):
            if node[axis] + 1 < self.dims[axis]:
                head = list(node)
                head[axis] += 1
                yield axis, tuple(head)

    # -- node indexing (flat ids for array-backed ledgers) ---------------

    def node_index(self, node: Node) -> int:
        """Flat row-major index of ``node``."""
        idx = 0
        for x, l in zip(node, self.dims):
            idx = idx * l + x
        return idx

    def node_from_index(self, idx: int) -> Node:
        coords = []
        for l in reversed(self.dims):
            coords.append(idx % l)
            idx //= l
        return tuple(reversed(coords))

    # -- request validation ----------------------------------------------

    def check_request(self, request) -> None:
        """Validate that ``request`` fits this network."""
        if request.dim != self.d:
            raise ValidationError(
                f"request dimension {request.dim} does not match grid dimension {self.d}"
            )
        self.check_node(request.source)
        self.check_node(request.dest)

    # -- paper parameters -------------------------------------------------

    def pmax(self) -> int:
        """The paper's maximum useful path length in the space-time graph.

        Section 3.6.1: for a line ``p_max = 2n(1 + n(B/c + 1))``; for a
        d-dimensional grid ``p_max = 2 diam(G) (1 + n(B/c + d))``.  Both are
        instances of ``(nu + 2) diam(G)`` from Lemma 2 (up to rounding).
        """
        n, B, c, d = self.n, self.buffer_size, self.capacity, self.d
        if d == 1:
            return math.ceil(2 * n * (1 + n * (B / c + 1)))
        return math.ceil(2 * self.diameter * (1 + n * (B / c + d)))

    def tile_side_k(self, pmax: int | None = None) -> int:
        """Tile side ``k = ceil(log2(1 + 3 p_max))`` (Section 5, Parameters)."""
        p = self.pmax() if pmax is None else pmax
        return max(1, math.ceil(math.log2(1 + 3 * p)))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(dims={self.dims}, B={self.buffer_size}, "
            f"c={self.capacity})"
        )


class LineNetwork(Network):
    """Uni-directional line with ``n`` nodes ``0 -> 1 -> ... -> n-1``."""

    def __init__(self, n: int, buffer_size: int = 1, capacity: int = 1):
        super().__init__((n,), buffer_size, capacity)

    @property
    def length(self) -> int:
        return self.dims[0]


class GridNetwork(Network):
    """Uni-directional d-dimensional grid (``d >= 2`` typical)."""

    def __init__(self, dims, buffer_size: int = 1, capacity: int = 1):
        super().__init__(dims, buffer_size, capacity)
        if self.d < 1:
            raise ValidationError("grid needs at least one dimension")
