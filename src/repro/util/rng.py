"""Deterministic randomness helpers.

All stochastic behaviour in the package flows through
:class:`numpy.random.Generator` objects.  Functions accept either a seed, a
generator, or ``None`` and normalise via :func:`as_generator`, following the
scientific-python convention that experiments must be replayable from a
single integer seed.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an ``int``, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so that callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, n: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``n`` independent child generators.

    Used by multi-seed experiment sweeps so each trial gets a statistically
    independent stream while remaining reproducible.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(n)]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(n)]
