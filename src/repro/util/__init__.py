"""Shared utilities: errors, RNG handling, and small helpers."""

from repro.util.errors import (
    CapacityError,
    ReproError,
    RoutingError,
    ValidationError,
)
from repro.util.rng import as_generator, spawn_generators

__all__ = [
    "CapacityError",
    "ReproError",
    "RoutingError",
    "ValidationError",
    "as_generator",
    "spawn_generators",
]
