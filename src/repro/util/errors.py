"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch package failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError):
    """An input (request, topology, parameter) failed validation."""


class CapacityError(ReproError):
    """A capacity constraint (link capacity ``c`` or buffer size ``B``) was
    violated.  Raised by the feasibility checkers; the online algorithms are
    expected to never trigger it."""


class RoutingError(ReproError):
    """A routing computation reached an inconsistent state (e.g. a detailed
    path left its sketch path).  Indicates a bug, not an adversarial input."""
