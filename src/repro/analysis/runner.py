"""Seeded multi-trial experiment running and aggregation.

Reproducibility contract: every trial's generator is derived from
``(base_seed, digest(point), trial_index)`` where the digest is a stable
CRC-32 of ``repr(point)`` -- *not* Python's ``hash``, which is randomized
per process by ``PYTHONHASHSEED`` and would make sweep results differ
across runs.  Because each trial is independently seeded, a sweep can be
sharded across a process pool (``workers=N``) and still produce results
bit-identical to the single-process run.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import spawn_generators


@dataclass
class ExperimentResult:
    """Aggregate of a metric over trials (mean, sd, extremes)."""

    label: str
    values: list = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(float(value))

    def _finite(self) -> list:
        return [v for v in self.values if np.isfinite(v)]

    @property
    def mean(self) -> float:
        # nan (not inf) when no trial was finite, so empty/poisoned
        # aggregates are distinguishable from genuinely divergent ratios
        finite = self._finite()
        return float(np.mean(finite)) if finite else float("nan")

    @property
    def std(self) -> float:
        finite = self._finite()
        if not finite:
            return float("nan")
        return float(np.std(finite)) if len(finite) > 1 else 0.0

    @property
    def best(self) -> float:
        finite = self._finite()
        return min(finite) if finite else float("nan")

    @property
    def worst(self) -> float:
        finite = self._finite()
        return max(finite) if finite else float("nan")

    def summary(self) -> str:
        return f"{self.label}: mean={self.mean:.3f} sd={self.std:.3f} n={len(self.values)}"


def run_trials(fn, seeds: int, base_seed: int = 0, label: str = "") -> ExperimentResult:
    """Run ``fn(rng) -> float`` over ``seeds`` independent generators."""
    result = ExperimentResult(label=label or getattr(fn, "__name__", "metric"))
    for rng in spawn_generators(base_seed, seeds):
        result.add(fn(rng))
    return result


def point_digest(point) -> int:
    """Stable 32-bit digest of a sweep point (replaces randomized ``hash``)."""
    return zlib.crc32(repr(point).encode("utf-8"))


def _trial_generator(base_seed: int, point, seeds: int, index: int):
    """Generator for trial ``index`` of ``point``.

    Spawning is deterministic, so picking one child in a worker process
    yields the same stream as the serial run -- no shared state needed.
    """
    return spawn_generators((base_seed, point_digest(point)), seeds)[index]


def _run_shard(shard) -> float:
    """Execute one (point, trial) shard; module-level so it pickles."""
    fn, point, base_seed, seeds, index = shard
    return float(fn(point, _trial_generator(base_seed, point, seeds, index)))


def sweep(fn, points, seeds: int = 3, base_seed: int = 0,
          workers: int | None = None) -> dict:
    """Run ``fn(point, rng) -> float`` for each sweep point.

    Returns ``{point: ExperimentResult}`` -- the shape the benches print as
    table rows (point per row).

    ``workers > 1`` shards the ``(point, trial)`` pairs over a process
    pool.  Seeding is per-shard and derived only from ``(base_seed, point,
    trial index)``, so the output is bit-identical to the serial run for
    any worker count; ``fn`` must be picklable (a module-level function)
    and pure per trial.

    For partitioning a sweep across *hosts* (not just one process pool)
    see :func:`sweep_shard` / :func:`merge_sweep_shards`; Scenario-based
    sweeps should use :mod:`repro.api.dispatch`, whose manifests also
    round-trip through JSON files.
    """
    out: dict = {point: ExperimentResult(label=str(point)) for point in points}
    # shard over the dict keys, not the input list: duplicate points collapse
    # into one entry, and the positional regrouping below must stay aligned
    shards = [
        (fn, point, base_seed, seeds, index)
        for point in out
        for index in range(seeds)
    ]
    if workers is not None and workers > 1 and len(shards) > 1:
        chunksize = max(1, len(shards) // (4 * workers))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            values = list(pool.map(_run_shard, shards, chunksize=chunksize))
    else:
        values = [_run_shard(shard) for shard in shards]
    for index, result in enumerate(out.values()):
        for value in values[index * seeds:(index + 1) * seeds]:
            result.add(value)
    return out


# -- multi-host partitioning ------------------------------------------------
#
# The same contract that lets ``workers=N`` shard (point, trial) pairs over
# a process pool lets a whole sweep be partitioned across hosts: every work
# unit is seeded only by (base_seed, point digest, trial index), so *where*
# it runs cannot change its value.  ``plan_sweep_shards`` fixes a
# deterministic, digest-ordered assignment; each host runs its stripe with
# ``sweep_shard`` and the parts reassemble with ``merge_sweep_shards`` into
# exactly the serial ``sweep`` output (same values in the same trial order).


def _unique_points(points) -> list:
    """Input points with duplicates collapsed, in first-seen order (the
    same normalization ``sweep`` applies via its dict keys)."""
    return list(dict.fromkeys(points))


def plan_sweep_shards(points, seeds: int, n_shards: int) -> list:
    """Deterministic partition of the ``(point, trial)`` work units.

    Units are ordered by ``(point digest, point index, trial index)`` and
    striped round-robin, so the plan depends only on the sweep content.
    Returns one list of ``(point_index, trial_index)`` pairs per shard
    (indices into the duplicate-collapsed point list).
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    unique = _unique_points(points)
    order = sorted(
        (point_digest(point), pi, ti)
        for pi, point in enumerate(unique)
        for ti in range(seeds)
    )
    units = [(pi, ti) for _, pi, ti in order]
    return [units[i::n_shards] for i in range(n_shards)]


def sweep_shard(fn, points, shard_index: int, n_shards: int,
                seeds: int = 3, base_seed: int = 0,
                workers: int | None = None) -> dict:
    """Run one shard of the :func:`plan_sweep_shards` partition.

    Returns ``{(point_index, trial_index): value}`` -- the partial results
    :func:`merge_sweep_shards` reassembles.  Within the shard, ``workers``
    fans the units over a process pool exactly like :func:`sweep`.
    """
    plan = plan_sweep_shards(points, seeds, n_shards)
    if not 0 <= shard_index < n_shards:
        raise ValueError(
            f"shard_index must satisfy 0 <= index < {n_shards}, "
            f"got {shard_index}")
    unique = _unique_points(points)
    units = plan[shard_index]
    shards = [(fn, unique[pi], base_seed, seeds, ti) for pi, ti in units]
    if workers is not None and workers > 1 and len(shards) > 1:
        chunksize = max(1, len(shards) // (4 * workers))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            values = list(pool.map(_run_shard, shards, chunksize=chunksize))
    else:
        values = [_run_shard(shard) for shard in shards]
    return dict(zip(units, values))


def merge_sweep_shards(points, parts, seeds: int = 3) -> dict:
    """Reassemble :func:`sweep_shard` outputs into the serial sweep result.

    ``parts`` is an iterable of the per-shard dicts, in any order.  The
    merged ``{point: ExperimentResult}`` is identical to
    ``sweep(fn, points, seeds, base_seed)`` -- including the order of each
    result's ``values`` list.  Raises ``ValueError`` when the parts do not
    cover every ``(point, trial)`` unit exactly once.
    """
    unique = _unique_points(points)
    combined: dict = {}
    for part in parts:
        for unit, value in part.items():
            if unit in combined:
                raise ValueError(
                    f"work unit {unit} appears in more than one shard")
            combined[unit] = value
    expected = {(pi, ti) for pi in range(len(unique)) for ti in range(seeds)}
    missing = sorted(expected - set(combined))
    extra = sorted(set(combined) - expected)
    if missing or extra:
        raise ValueError(
            f"shard parts do not tile the sweep: missing {missing or 'none'}"
            f", unexpected {extra or 'none'}")
    out = {point: ExperimentResult(label=str(point)) for point in unique}
    for pi, point in enumerate(unique):
        for ti in range(seeds):
            out[point].add(combined[(pi, ti)])
    return out
