"""Seeded multi-trial experiment running and aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import spawn_generators


@dataclass
class ExperimentResult:
    """Aggregate of a metric over trials (mean, sd, extremes)."""

    label: str
    values: list = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def mean(self) -> float:
        finite = [v for v in self.values if np.isfinite(v)]
        return float(np.mean(finite)) if finite else float("inf")

    @property
    def std(self) -> float:
        finite = [v for v in self.values if np.isfinite(v)]
        return float(np.std(finite)) if len(finite) > 1 else 0.0

    @property
    def best(self) -> float:
        return min(self.values) if self.values else float("nan")

    @property
    def worst(self) -> float:
        return max(self.values) if self.values else float("nan")

    def summary(self) -> str:
        return f"{self.label}: mean={self.mean:.3f} sd={self.std:.3f} n={len(self.values)}"


def run_trials(fn, seeds: int, base_seed: int = 0, label: str = "") -> ExperimentResult:
    """Run ``fn(rng) -> float`` over ``seeds`` independent generators."""
    result = ExperimentResult(label=label or getattr(fn, "__name__", "metric"))
    for rng in spawn_generators(base_seed, seeds):
        result.add(fn(rng))
    return result


def sweep(fn, points, seeds: int = 3, base_seed: int = 0) -> dict:
    """Run ``fn(point, rng) -> float`` for each sweep point.

    Returns ``{point: ExperimentResult}`` -- the shape the benches print as
    table rows (point per row)."""
    out: dict = {}
    for point in points:
        result = ExperimentResult(label=str(point))
        for rng in spawn_generators((base_seed, hash(str(point)) & 0xFFFF), seeds):
            result.add(fn(point, rng))
        out[point] = result
    return out
