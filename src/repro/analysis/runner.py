"""Seeded multi-trial experiment running and aggregation.

Reproducibility contract: every trial's generator is derived from
``(base_seed, digest(point), trial_index)`` where the digest is a stable
CRC-32 of ``repr(point)`` -- *not* Python's ``hash``, which is randomized
per process by ``PYTHONHASHSEED`` and would make sweep results differ
across runs.  Because each trial is independently seeded, a sweep can be
sharded across a process pool (``workers=N``) and still produce results
bit-identical to the single-process run.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import spawn_generators


@dataclass
class ExperimentResult:
    """Aggregate of a metric over trials (mean, sd, extremes)."""

    label: str
    values: list = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(float(value))

    def _finite(self) -> list:
        return [v for v in self.values if np.isfinite(v)]

    @property
    def mean(self) -> float:
        # nan (not inf) when no trial was finite, so empty/poisoned
        # aggregates are distinguishable from genuinely divergent ratios
        finite = self._finite()
        return float(np.mean(finite)) if finite else float("nan")

    @property
    def std(self) -> float:
        finite = self._finite()
        if not finite:
            return float("nan")
        return float(np.std(finite)) if len(finite) > 1 else 0.0

    @property
    def best(self) -> float:
        finite = self._finite()
        return min(finite) if finite else float("nan")

    @property
    def worst(self) -> float:
        finite = self._finite()
        return max(finite) if finite else float("nan")

    def summary(self) -> str:
        return f"{self.label}: mean={self.mean:.3f} sd={self.std:.3f} n={len(self.values)}"


def run_trials(fn, seeds: int, base_seed: int = 0, label: str = "") -> ExperimentResult:
    """Run ``fn(rng) -> float`` over ``seeds`` independent generators."""
    result = ExperimentResult(label=label or getattr(fn, "__name__", "metric"))
    for rng in spawn_generators(base_seed, seeds):
        result.add(fn(rng))
    return result


def point_digest(point) -> int:
    """Stable 32-bit digest of a sweep point (replaces randomized ``hash``)."""
    return zlib.crc32(repr(point).encode("utf-8"))


def _trial_generator(base_seed: int, point, seeds: int, index: int):
    """Generator for trial ``index`` of ``point``.

    Spawning is deterministic, so picking one child in a worker process
    yields the same stream as the serial run -- no shared state needed.
    """
    return spawn_generators((base_seed, point_digest(point)), seeds)[index]


def _run_shard(shard) -> float:
    """Execute one (point, trial) shard; module-level so it pickles."""
    fn, point, base_seed, seeds, index = shard
    return float(fn(point, _trial_generator(base_seed, point, seeds, index)))


def sweep(fn, points, seeds: int = 3, base_seed: int = 0,
          workers: int | None = None) -> dict:
    """Run ``fn(point, rng) -> float`` for each sweep point.

    Returns ``{point: ExperimentResult}`` -- the shape the benches print as
    table rows (point per row).

    ``workers > 1`` shards the ``(point, trial)`` pairs over a process
    pool.  Seeding is per-shard and derived only from ``(base_seed, point,
    trial index)``, so the output is bit-identical to the serial run for
    any worker count; ``fn`` must be picklable (a module-level function)
    and pure per trial.
    """
    out: dict = {point: ExperimentResult(label=str(point)) for point in points}
    # shard over the dict keys, not the input list: duplicate points collapse
    # into one entry, and the positional regrouping below must stay aligned
    shards = [
        (fn, point, base_seed, seeds, index)
        for point in out
        for index in range(seeds)
    ]
    if workers is not None and workers > 1 and len(shards) > 1:
        chunksize = max(1, len(shards) // (4 * workers))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            values = list(pool.map(_run_shard, shards, chunksize=chunksize))
    else:
        values = [_run_shard(shard) for shard in shards]
    for index, result in enumerate(out.values()):
        for value in values[index * seeds:(index + 1) * seeds]:
            result.add(value)
    return out
