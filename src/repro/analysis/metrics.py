"""Throughput and competitive-ratio measurement."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.offline import offline_bound
from repro.core.base import Plan
from repro.network.simulator import execute_plan
from repro.network.topology import Network
from repro.util.errors import ReproError


@dataclass
class Evaluation:
    """Measured outcome of one algorithm on one instance."""

    throughput: int
    bound: float
    requests: int

    @property
    def ratio(self) -> float:
        """Competitive ratio estimate ``bound / throughput`` (inf when the
        algorithm delivered nothing but the bound is positive)."""
        if self.throughput > 0:
            return self.bound / self.throughput
        return float("inf") if self.bound > 0 else 1.0

    @property
    def goodput(self) -> float:
        """Fraction of the offline bound achieved (1/ratio, 0 when idle)."""
        return self.throughput / self.bound if self.bound > 0 else 1.0


def evaluate_plan(network: Network, plan: Plan, requests, horizon: int,
                  bound_method: str = "maxflow", verify: bool = True) -> Evaluation:
    """Measure a planning router's output against an offline bound.

    With ``verify=True`` (default) the plan is replayed through the step
    simulator; a mismatch between planned and simulated deliveries raises,
    which is the core cross-check between the planners' numpy ledgers and
    the synchronous network semantics.
    """
    if verify:
        result = execute_plan(network, plan.all_executable_paths(), requests, horizon)
        if not plan.consistent_with_simulation(result):
            planned = plan.delivered_ids()
            simulated = result.delivered_ids()
            raise ReproError(
                f"plan/simulation mismatch: planned-only="
                f"{sorted(planned - simulated)[:10]} simulated-only="
                f"{sorted(simulated - planned)[:10]}"
            )
    bound = offline_bound(network, requests, horizon, bound_method)
    return Evaluation(throughput=plan.throughput, bound=bound, requests=len(list(requests)))


def evaluate_policy(network: Network, result, requests, horizon: int,
                    bound_method: str = "maxflow") -> Evaluation:
    """Measure an online policy's :class:`SimulationResult`."""
    bound = offline_bound(network, requests, horizon, bound_method)
    return Evaluation(
        throughput=result.throughput, bound=bound, requests=len(list(requests))
    )


def competitive_ratio(network: Network, throughput: int, requests, horizon: int,
                      bound_method: str = "maxflow") -> float:
    """Bound / throughput for a raw throughput number."""
    bound = offline_bound(network, requests, horizon, bound_method)
    if throughput > 0:
        return bound / throughput
    return float("inf") if bound > 0 else 1.0
