"""ASCII rendering of space-time structures (the paper's figures as text).

The paper's figures are drawings of the untilted space-time grid, its
tiles, quadrants and detailed paths (Figures 2, 3, 5, 8, 9).  These
renderers reproduce them as monospace text for terminals, examples and
docs.  Convention follows the paper: the vertical axis is space (north =
up = increasing node index), the horizontal axis is the untilted column
``t - x`` (east = right = buffering).

Cells show ``.`` for empty vertices, a path's glyph where a path visits,
and ``+``/``|``/``-`` tile rulings when a tiling is supplied.
"""

from __future__ import annotations

import string

from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.spacetime.tiling import Tiling
from repro.util.errors import ValidationError

GLYPHS = string.ascii_uppercase + string.ascii_lowercase + string.digits


def _path_cells(graph: SpaceTimeGraph, path: STPath):
    return list(path.vertices(graph.d))


def render_spacetime(graph: SpaceTimeGraph, paths=(), tiling: Tiling | None = None,
                     col_lo: int | None = None, col_hi: int | None = None,
                     legend: bool = True) -> str:
    """Render a 1-dimensional space-time graph with optional paths/tiles.

    Paths are drawn with one glyph each (A, B, C, ...); later paths
    overwrite earlier ones on shared vertices (which capacity-feasible
    plans only do at distinct times, i.e. never on a line).
    """
    if graph.d != 1:
        raise ValidationError("ASCII rendering supports lines (d = 1)")
    n = graph.network.dims[0]
    lo = -graph.col_offset if col_lo is None else col_lo
    hi = graph.horizon if col_hi is None else col_hi

    width = hi - lo + 1
    rows = [["." for _ in range(width)] for _ in range(n)]

    def put(r, c, ch):
        if 0 <= r < n and lo <= c <= hi:
            rows[r][c - lo] = ch

    if tiling is not None:
        for r in range(n):
            for c in range(lo, hi + 1):
                lr, lc = tiling.local((r, c))
                if lr == 0 and lc == 0:
                    put(r, c, "+")
                elif lr == 0:
                    put(r, c, "-")
                elif lc == 0:
                    put(r, c, "|")

    names = {}
    for i, path in enumerate(paths):
        glyph = GLYPHS[i % len(GLYPHS)]
        names[glyph] = getattr(path, "rid", i)
        for v in _path_cells(graph, path):
            put(v[0], v[1], glyph)

    lines = []
    for r in range(n - 1, -1, -1):  # north at the top, as in the figures
        lines.append(f"{r:>3} " + "".join(rows[r]))
    axis = "    " + "".join(
        "^" if (c % 10 == 0) else " " for c in range(lo, hi + 1)
    )
    lines.append(axis)
    lines.append(f"    col (t - x) from {lo} to {hi}; east = buffering, north = transmit")
    if legend and names:
        lines.append(
            "    paths: " + ", ".join(f"{g} = request {rid}" for g, rid in names.items())
        )
    return "\n".join(lines)


def render_tile_quadrants(Q: int, tau: int) -> str:
    """Figure 8/9: the quadrants of a tile and the allowed route roles."""
    if Q % 2 or tau % 2:
        raise ValidationError("quadrant rendering needs even sides")
    rows = []
    for r in range(Q - 1, -1, -1):
        cells = []
        for c in range(tau):
            north = r >= Q // 2
            east = c >= tau // 2
            cells.append(
                "X" if (north and east) else
                "T" if (north or east) else "I"
            )
        rows.append(" ".join(cells))
    rows.append("")
    rows.append("I = SW quadrant (I-routing; sources start here)")
    rows.append("T = NW / SE quadrants (T-routing; one blocked side each)")
    rows.append("X = NE quadrant (X-routing; exits north / east)")
    return "\n".join(rows)


def render_sketch_loads(sketch, loads: dict) -> str:
    """Per-tile table of sketch-edge loads (Figure 3e with numbers).

    ``loads`` maps sketch edge keys (as produced by IPP's ``flow``) to
    integers; tiles are laid out row-band by row-band.
    """
    tiles = sorted(sketch.tiles)
    if not tiles:
        return "(empty sketch)"
    rows = []
    r_vals = sorted({t[0] for t in tiles})
    c_vals = sorted({t[-1] for t in tiles})
    header = "band\\col " + " ".join(f"{c:>7}" for c in c_vals)
    rows.append(header)
    for r in reversed(r_vals):
        cells = []
        for c in c_vals:
            tile = (r, c)
            if tile not in sketch.tiles:
                cells.append("      .")
                continue
            north = loads.get(("e", tile, 0), 0)
            east = loads.get(("e", tile, 1), 0)
            cells.append(f"{north:>3}^{east:>2}>")
        rows.append(f"{r:>8} " + " ".join(cells))
    rows.append("(each cell: paths leaving the tile north^ and east>)")
    return "\n".join(rows)
