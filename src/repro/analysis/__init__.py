"""Experiment harness: metrics, runners, tables and ASCII rendering."""

from repro.analysis.metrics import competitive_ratio, evaluate_plan, evaluate_policy
from repro.analysis.runner import ExperimentResult, run_trials, sweep
from repro.analysis.tables import format_table
from repro.analysis.viz import (
    render_sketch_loads,
    render_spacetime,
    render_tile_quadrants,
)

__all__ = [
    "ExperimentResult",
    "competitive_ratio",
    "evaluate_plan",
    "evaluate_policy",
    "format_table",
    "render_sketch_loads",
    "render_spacetime",
    "render_tile_quadrants",
    "run_trials",
    "sweep",
]
