"""Load and utilization profiling of routing plans.

Answers the operational questions a network operator asks of a plan:
how hot do links and buffers run, where, and when.  Backed by the same
numpy ledgers as the routers (per the hpc-parallel guides, the heavy
lifting is vectorised array reduction, not Python loops).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Plan
from repro.network.topology import Network
from repro.spacetime.graph import SpaceTimeGraph


@dataclass(frozen=True)
class LoadProfile:
    """Utilization summary of one plan on one network."""

    link_peak: int  # max packets on any link at any step
    buffer_peak: int  # max packets in any buffer at any step
    link_utilization: float  # mean load / capacity over used steps
    buffer_utilization: float
    busiest_link_time: tuple  # ((node, axis), t) of the peak
    hops_total: int
    stores_total: int

    def summary(self) -> str:
        return (
            f"links: peak {self.link_peak}, util {self.link_utilization:.2%}; "
            f"buffers: peak {self.buffer_peak}, util {self.buffer_utilization:.2%}; "
            f"hops {self.hops_total}, stores {self.stores_total}"
        )


def profile_plan(network: Network, plan: Plan, horizon: int) -> LoadProfile:
    """Profile all executable paths of ``plan`` over ``horizon`` steps."""
    graph = SpaceTimeGraph(network, horizon)
    ledger = graph.ledger()
    for path in plan.all_executable_paths().values():
        ledger.add_path(path, strict=True)

    d = graph.d
    space = [ledger._loads[axis] for axis in range(d)]
    buf = ledger._loads[d]

    link_peak = int(max((arr.max() for arr in space), default=0))
    buffer_peak = int(buf.max()) if buf.size else 0

    used_links = sum(int((arr > 0).sum()) for arr in space)
    hops_total = int(sum(arr.sum() for arr in space))
    stores_total = int(buf.sum())
    link_util = (
        hops_total / (used_links * network.capacity) if used_links else 0.0
    )
    used_bufs = int((buf > 0).sum())
    buf_util = (
        stores_total / (used_bufs * network.buffer_size)
        if used_bufs and network.buffer_size
        else 0.0
    )

    busiest = ((None, None), -1)
    if link_peak > 0:
        for axis, arr in enumerate(space):
            idx = np.unravel_index(int(arr.argmax()), arr.shape)
            if int(arr[idx]) == link_peak:
                node = idx[:-1]
                col = int(idx[-1]) - graph.col_offset
                busiest = ((tuple(node), axis), col + sum(node))
                break

    return LoadProfile(
        link_peak=link_peak,
        buffer_peak=buffer_peak,
        link_utilization=link_util,
        buffer_utilization=buf_util,
        busiest_link_time=busiest,
        hops_total=hops_total,
        stores_total=stores_total,
    )


def time_profile(network: Network, plan: Plan, horizon: int) -> np.ndarray:
    """Packets in flight (on links or in buffers) per time step.

    Entry ``t`` counts the edges whose tail vertex has time ``t`` across
    all executable paths -- the network's instantaneous occupancy."""
    graph = SpaceTimeGraph(network, horizon)
    out = np.zeros(horizon + 1, dtype=np.int64)
    for path in plan.all_executable_paths().values():
        v = path.start
        t = graph.vertex_time(v)
        for _move in path.moves:
            if 0 <= t <= horizon:
                out[t] += 1
            t += 1
    return out
