"""Fixed-width table formatting for bench output.

The benches print rows comparable to the paper's statements; this keeps
the formatting in one place so EXPERIMENTS.md and the bench output agree.
"""

from __future__ import annotations


def format_table(headers, rows, title: str | None = None) -> str:
    """Render a list-of-rows table with padded columns."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
